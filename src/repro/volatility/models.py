"""EWMA and GARCH(1,1) conditional-volatility models."""

from __future__ import annotations

import numpy as np
from scipy import optimize

from .._validation import as_1d_array, check_horizon
from ..core.base import BaseEstimator, check_is_fitted
from ..exceptions import InvalidParameterError

__all__ = ["to_returns", "EWMAVolatility", "GARCHModel"]


def to_returns(levels, kind: str = "log") -> np.ndarray:
    """Convert a price/level series into returns.

    ``kind`` is ``"log"`` (default, requires positive levels) or ``"simple"``.
    """
    levels = as_1d_array(levels, name="levels")
    if len(levels) < 2:
        raise InvalidParameterError("Need at least two observations to compute returns.")
    if kind == "log":
        if np.nanmin(levels) <= 0:
            raise InvalidParameterError("Log returns require strictly positive levels.")
        return np.diff(np.log(levels))
    if kind == "simple":
        previous = levels[:-1]
        previous = np.where(previous == 0, 1e-12, previous)
        return np.diff(levels) / previous
    raise InvalidParameterError(f"Unknown return kind {kind!r}; expected 'log' or 'simple'.")


class EWMAVolatility(BaseEstimator):
    """RiskMetrics exponentially weighted moving-average variance model.

    ``sigma2[t] = lambda * sigma2[t-1] + (1 - lambda) * r[t-1]**2`` with the
    classic decay ``lambda = 0.94`` for daily data.
    """

    def __init__(self, decay: float = 0.94):
        self.decay = decay

    def fit(self, returns) -> "EWMAVolatility":
        if not 0.0 < self.decay < 1.0:
            raise InvalidParameterError("decay must lie strictly between 0 and 1.")
        returns = as_1d_array(returns, name="returns")
        if len(returns) < 2:
            raise InvalidParameterError("Need at least two returns to fit EWMA volatility.")

        variance = np.empty(len(returns))
        variance[0] = float(np.var(returns)) or 1e-12
        for t in range(1, len(returns)):
            variance[t] = self.decay * variance[t - 1] + (1 - self.decay) * returns[t - 1] ** 2
        self.conditional_variance_ = variance
        self.last_return_ = float(returns[-1])
        return self

    def forecast_variance(self, horizon: int = 1) -> np.ndarray:
        """EWMA variance forecast (flat beyond one step by construction)."""
        check_is_fitted(self, ("conditional_variance_",))
        horizon = check_horizon(horizon)
        next_variance = (
            self.decay * self.conditional_variance_[-1]
            + (1 - self.decay) * self.last_return_**2
        )
        return np.full(horizon, next_variance)

    def forecast_volatility(self, horizon: int = 1) -> np.ndarray:
        """Square root of :meth:`forecast_variance`."""
        return np.sqrt(self.forecast_variance(horizon))


class GARCHModel(BaseEstimator):
    """GARCH(1, 1) with Gaussian quasi-maximum-likelihood estimation.

    ``sigma2[t] = omega + alpha * r[t-1]**2 + beta * sigma2[t-1]``.
    """

    def __init__(self, initial_alpha: float = 0.08, initial_beta: float = 0.9):
        self.initial_alpha = initial_alpha
        self.initial_beta = initial_beta

    @staticmethod
    def _conditional_variance(
        returns: np.ndarray, omega: float, alpha: float, beta: float
    ) -> np.ndarray:
        variance = np.empty(len(returns))
        variance[0] = max(float(np.var(returns)), 1e-12)
        for t in range(1, len(returns)):
            variance[t] = omega + alpha * returns[t - 1] ** 2 + beta * variance[t - 1]
            variance[t] = max(variance[t], 1e-18)
        return variance

    def _negative_log_likelihood(self, params: np.ndarray, returns: np.ndarray) -> float:
        omega, alpha, beta = params
        if omega <= 0 or alpha < 0 or beta < 0 or alpha + beta >= 0.999:
            return 1e12
        variance = self._conditional_variance(returns, omega, alpha, beta)
        return float(0.5 * np.sum(np.log(variance) + returns**2 / variance))

    def fit(self, returns) -> "GARCHModel":
        returns = as_1d_array(returns, name="returns")
        returns = returns - returns.mean()
        if len(returns) < 20:
            raise InvalidParameterError("Need at least 20 returns to fit a GARCH model.")

        sample_variance = max(float(np.var(returns)), 1e-12)
        initial_omega = sample_variance * (1 - self.initial_alpha - self.initial_beta)
        initial = np.array([max(initial_omega, 1e-8), self.initial_alpha, self.initial_beta])
        bounds = [(1e-10, 10.0 * sample_variance), (0.0, 0.6), (0.0, 0.999)]
        result = optimize.minimize(
            self._negative_log_likelihood,
            initial,
            args=(returns,),
            bounds=bounds,
            method="L-BFGS-B",
        )
        self.omega_, self.alpha_, self.beta_ = (float(value) for value in result.x)
        self.conditional_variance_ = self._conditional_variance(
            returns, self.omega_, self.alpha_, self.beta_
        )
        self.last_return_ = float(returns[-1])
        self.log_likelihood_ = -float(result.fun)
        return self

    @property
    def persistence(self) -> float:
        """alpha + beta: how slowly volatility shocks decay."""
        check_is_fitted(self, ("alpha_",))
        return self.alpha_ + self.beta_

    @property
    def unconditional_variance(self) -> float:
        """Long-run variance ``omega / (1 - alpha - beta)``."""
        check_is_fitted(self, ("alpha_",))
        return self.omega_ / max(1.0 - self.persistence, 1e-9)

    def forecast_variance(self, horizon: int = 1) -> np.ndarray:
        """Multi-step variance forecast, mean-reverting to the long-run level."""
        check_is_fitted(self, ("alpha_",))
        horizon = check_horizon(horizon)
        forecasts = np.empty(horizon)
        current = (
            self.omega_
            + self.alpha_ * self.last_return_**2
            + self.beta_ * self.conditional_variance_[-1]
        )
        long_run = self.unconditional_variance
        for step in range(horizon):
            forecasts[step] = current
            current = long_run + self.persistence * (current - long_run)
        return forecasts

    def forecast_volatility(self, horizon: int = 1) -> np.ndarray:
        """Square root of :meth:`forecast_variance`."""
        return np.sqrt(self.forecast_variance(horizon))
