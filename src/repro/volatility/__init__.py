"""Volatility models (paper section 6 future work: "high volatility models").

Two standard conditional-variance models implemented on the numpy/scipy
substrate:

* :class:`EWMAVolatility` — RiskMetrics-style exponentially weighted moving
  average of squared returns.
* :class:`GARCHModel` — GARCH(1, 1) fitted by (Gaussian) maximum likelihood
  with scipy's bounded optimiser.

Both expose ``fit(returns)`` / ``forecast_variance(horizon)`` and a helper to
convert a price/level series into returns, so they can be attached to any
forecasting pipeline that needs volatility-aware prediction intervals.
"""

from .models import EWMAVolatility, GARCHModel, to_returns

__all__ = ["EWMAVolatility", "GARCHModel", "to_returns"]
