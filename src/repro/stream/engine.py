"""Drift-aware streaming orchestration over warm-started T-Daub.

:class:`StreamingEngine` closes the loop the ROADMAP calls "streaming
ingest + drift-aware refit": arrivals land in an append-only
:class:`~repro.stream.ArrivalBuffer`, the deployed winner absorbs them
through the :meth:`~repro.core.base.BaseForecaster.update` seam (O(Δ)
where the math allows, verified full refit otherwise), a
:class:`~repro.anomaly.ResidualDriftWatcher` scores each arrival's
forecast residual, and a sustained residual regime change triggers a
**warm-started** re-rank — T-Daub replays its rolling-origin schedule
with every unchanged-prefix cell served from cache, so re-ranking after
Δ arrivals costs O(Δ), not O(T + Δ).  Optionally the refreshed winner is
published to the serving layer's content-addressed snapshot store, where
running replicas hot-swap to it with zero dropped requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_2d_array
from ..anomaly.watch import DriftReport, ResidualDriftWatcher
from ..core.base import BaseForecaster
from ..core.tdaub import TDaub
from ..exceptions import InvalidParameterError
from .buffer import ArrivalBuffer

__all__ = ["StreamingEngine", "ArrivalReport"]


@dataclass
class ArrivalReport:
    """What one :meth:`StreamingEngine.append` call did."""

    n_new: int
    total_rows: int
    drift: DriftReport | None = None
    reranked: bool = False
    ranking: list[str] = field(default_factory=list)
    #: winner name after this append (unchanged unless a re-rank ran).
    winner: str = ""
    #: snapshot metadata when the re-ranked winner was published.
    published: object = None


class StreamingEngine:
    """Continuously-ranked forecasting over a growing series.

    Parameters
    ----------
    pipelines:
        Candidate pipelines, handed to :class:`~repro.core.TDaub` under
        ``eval_protocol="rolling_origin"`` (the protocol whose evaluation
        cells are pure functions of series prefixes).
    horizon:
        Forecast horizon of the ranking and the deployed winner.
    n_test:
        Rolling test-window length (pinned across re-ranks so warm runs
        reuse the cold run's cells).  ``None`` lets the first ranking
        derive it, after which it is pinned automatically.
    watcher:
        Drift detector fed one residual per arrival; defaults to a
        :class:`~repro.anomaly.ResidualDriftWatcher` with stock settings.
    rerank_on_drift:
        When True (default), a drift report triggers :meth:`rerank`
        immediately inside :meth:`append`.
    publish_store / publish_name:
        When ``publish_store`` is set (a :class:`~repro.store.StoreBackend`,
        store URL or directory path), every re-rank publishes the new
        winner as a model snapshot under ``publish_name`` via
        :func:`repro.serve.publish_model` — live replicas subscribed to
        that name hot-swap to it.
    tdaub_params:
        Extra keyword arguments forwarded to every :class:`TDaub`
        construction (executor, n_jobs, store, min_allocation_size, ...).
    """

    def __init__(
        self,
        pipelines,
        horizon: int = 1,
        n_test: int | None = None,
        watcher: ResidualDriftWatcher | None = None,
        rerank_on_drift: bool = True,
        publish_store=None,
        publish_name: str = "streaming-winner",
        capacity: int = 256,
        tdaub_params: dict | None = None,
    ):
        self.pipelines = list(pipelines)
        self.horizon = int(horizon)
        self.n_test = n_test
        self.watcher = watcher if watcher is not None else ResidualDriftWatcher()
        self.rerank_on_drift = bool(rerank_on_drift)
        self.publish_store = publish_store
        self.publish_name = str(publish_name)
        self._capacity = int(capacity)
        self.tdaub_params = dict(tdaub_params or {})
        self._buffer: ArrivalBuffer | None = None
        self._ranker: TDaub | None = None
        self._model: BaseForecaster | None = None
        self._model_rows = 0
        self.rerank_count_ = 0
        self.published_ = []

    # -- lifecycle -----------------------------------------------------------
    @property
    def buffer(self) -> ArrivalBuffer:
        if self._buffer is None:
            raise InvalidParameterError("StreamingEngine.start() has not run yet.")
        return self._buffer

    @property
    def ranker_(self) -> TDaub:
        if self._ranker is None:
            raise InvalidParameterError("StreamingEngine.start() has not run yet.")
        return self._ranker

    @property
    def winner_name_(self) -> str:
        return getattr(self.ranker_, "best_pipeline_name_", "")

    @property
    def ranking_(self) -> list[str]:
        return list(self.ranker_.ranked_names_)

    def _make_ranker(self, warm_start=None) -> TDaub:
        params = dict(self.tdaub_params)
        params.setdefault("memoize", True)
        return TDaub(
            self.pipelines,
            horizon=self.horizon,
            eval_protocol="rolling_origin",
            n_test=self.n_test,
            warm_start=warm_start,
            **params,
        )

    def start(self, X0) -> "StreamingEngine":
        """Cold-rank on the initial history and deploy the winner."""
        X0 = as_2d_array(X0, name="X0")
        self._buffer = ArrivalBuffer(
            n_series=X0.shape[1], capacity=max(self._capacity, 2 * len(X0))
        )
        self._buffer.append(X0)
        self._ranker = self._make_ranker()
        self._ranker.fit(self._buffer.view())
        # Pin the geometry: later warm runs must replay these exact cells.
        self.n_test = int(self._ranker.warm_state_.n_test)
        self._model = self._ranker.best_pipeline_
        self._model_rows = len(self._buffer)
        return self

    # -- streaming -----------------------------------------------------------
    def append(self, rows) -> ArrivalReport:
        """Ingest arrivals: update the winner, watch residuals, maybe re-rank.

        Residuals are computed *before* the model sees the new rows (the
        honest one-step-ahead error a deployed forecaster would have
        made), then the winner absorbs them via ``update`` and the
        watcher decides whether the residual regime drifted.
        """
        buffer = self.buffer
        rows = as_2d_array(rows, name="rows")
        report = ArrivalReport(n_new=len(rows), total_rows=len(buffer) + len(rows))
        if len(rows) == 0:
            report.ranking = self.ranking_
            report.winner = self.winner_name_
            return report

        drift: DriftReport | None = None
        if self._model is not None:
            try:
                predicted = np.asarray(
                    self._model.predict(len(rows)), dtype=float
                ).reshape(len(rows), -1)
            except Exception:  # noqa: BLE001 - a broken winner must not drop data
                predicted = None
            if predicted is not None and predicted.shape == rows.shape:
                for row, forecast in zip(rows, predicted):
                    found = self.watcher.observe(row - forecast)
                    if found is not None:
                        drift = found

        buffer.append(rows)
        self._absorb(buffer)

        report.drift = drift
        if drift is not None and self.rerank_on_drift:
            published = self.rerank()
            report.reranked = True
            report.published = published
            self.watcher.reset()
        report.ranking = self.ranking_
        report.winner = self.winner_name_
        report.total_rows = len(buffer)
        return report

    def _absorb(self, buffer: ArrivalBuffer) -> None:
        """Fold rows the deployed model has not seen into its fitted state."""
        if self._model is None:
            return
        view = buffer.view()
        new = view[self._model_rows :]
        if len(new) == 0:
            return
        update = getattr(self._model, "update", None)
        try:
            if callable(update):
                update(new, X_full=view)
            else:
                self._model.fit(view)
        except Exception:  # noqa: BLE001 - fall back to the refit everyone trusts
            self._model.fit(view)
        self._model_rows = len(buffer)

    def rerank(self):
        """Warm-started re-rank over the full buffer; redeploy the winner.

        Returns the published snapshot when ``publish_store`` is set,
        else ``None``.
        """
        warm = getattr(self.ranker_, "warm_state_", None)
        ranker = self._make_ranker(warm_start=warm)
        ranker.fit(self.buffer.view())
        self._ranker = ranker
        self._model = ranker.best_pipeline_
        self._model_rows = len(self.buffer)
        self.rerank_count_ += 1
        published = None
        if self.publish_store is not None and self._model is not None:
            from ..serve import publish_model
            from ..store import open_store

            backend = open_store(self.publish_store)
            published = publish_model(self._model, backend, self.publish_name)
            self.published_.append(published)
        return published

    # -- forecasting ---------------------------------------------------------
    def predict(self, horizon: int | None = None) -> np.ndarray:
        """Forecast with the currently deployed winner."""
        if self._model is None:
            raise InvalidParameterError("StreamingEngine has no deployed model yet.")
        return self._model.predict(horizon if horizon is not None else self.horizon)
