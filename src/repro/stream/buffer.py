"""Append-only arrival buffer backing the streaming evaluation path.

The streaming engine needs one growing 2-D series whose *prefix bytes
never move*: every rolling-origin evaluation cell, every cache record and
every incremental digest state is keyed on those bytes.
:class:`ArrivalBuffer` owns a private writable capacity buffer, registers
it with :func:`repro.store.digest.register_append_base` so hashing any
prefix view is incremental, and hands consumers **read-only** zero-offset
views — the discipline that makes the fast path sound.  Geometric
reallocation on overflow carries the incremental hash states, so growth
never re-pays for history.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array
from ..exceptions import DataQualityError, InvalidParameterError
from ..store.digest import register_append_base

__all__ = ["ArrivalBuffer"]


class ArrivalBuffer:
    """Append-only ``(n_rows, n_series)`` float64 buffer with stable views.

    Parameters
    ----------
    n_series:
        Number of series (columns).  Fixed for the buffer's life.
    capacity:
        Initial row capacity; grows geometrically when exceeded.
    """

    def __init__(self, n_series: int, capacity: int = 256):
        if n_series < 1:
            raise InvalidParameterError("n_series must be >= 1")
        self._n_series = int(n_series)
        capacity = max(int(capacity), 8)
        self._base = register_append_base(
            np.empty((capacity, self._n_series), dtype=np.float64)
        )
        self._rows = 0

    # -- shape ---------------------------------------------------------------
    def __len__(self) -> int:
        return self._rows

    @property
    def n_series(self) -> int:
        return self._n_series

    @property
    def capacity(self) -> int:
        return len(self._base)

    # -- growth --------------------------------------------------------------
    def append(self, rows) -> np.ndarray:
        """Append ``rows`` (coerced to ``(delta, n_series)`` float64).

        Returns a read-only view of just the appended rows.  Existing
        views handed out by :meth:`view` keep their bytes — on overflow
        the buffer reallocates rather than moving them, and the
        incremental digest states carry to the new allocation.
        """
        rows = as_2d_array(rows, name="rows")
        if rows.shape[1] != self._n_series:
            raise DataQualityError(
                f"appended rows have {rows.shape[1]} series, the buffer holds "
                f"{self._n_series}."
            )
        delta = len(rows)
        if delta == 0:
            return self.view()[self._rows :]
        needed = self._rows + delta
        if needed > len(self._base):
            capacity = max(2 * len(self._base), needed)
            new_base = np.empty((capacity, self._n_series), dtype=np.float64)
            new_base[: self._rows] = self._base[: self._rows]
            register_append_base(
                new_base,
                carry_from=self._base,
                carry_bytes=self._rows * self._n_series * new_base.itemsize,
            )
            self._base = new_base
        self._base[self._rows : needed] = rows
        self._rows = needed
        appended = self._base[self._rows - delta : self._rows]
        appended = appended.view()
        appended.flags.writeable = False
        return appended

    # -- access --------------------------------------------------------------
    def view(self) -> np.ndarray:
        """Read-only zero-offset view of all rows appended so far.

        The view is a prefix of the registered append base, so
        ``array_digest`` (and therefore every evaluation-cache slice
        fingerprint derived from it or its sub-prefixes) resolves through
        the incremental fast path.
        """
        view = self._base[: self._rows]
        view = view.view()
        view.flags.writeable = False
        return view

    def __repr__(self) -> str:
        return (
            f"ArrivalBuffer(rows={self._rows}, n_series={self._n_series}, "
            f"capacity={self.capacity})"
        )
