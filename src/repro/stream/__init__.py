"""Incremental evaluation engine: O(Δ) streaming re-ranking.

The batch engine treats every invocation as cold — appending Δ rows to a
T-length series re-fingerprints, re-fits and re-ranks everything at
O(T + Δ).  This package is the incremental path through every layer:

- :class:`ArrivalBuffer` — an append-only series whose prefix bytes
  never move, registered for incremental BLAKE2 prefix hashing
  (:func:`repro.store.digest.register_append_base`) so fingerprinting
  after an append costs O(Δ);
- the :meth:`~repro.core.base.BaseForecaster.update` seam — deployed
  winners absorb arrivals from sufficient statistics where the math
  allows, with a verified full-refit fallback elsewhere;
- :class:`StreamingEngine` — residual drift watching
  (:class:`repro.anomaly.ResidualDriftWatcher`) over the deployed
  winner's one-step-ahead errors, answered by a **warm-started**
  rolling-origin T-Daub re-rank (``TDaub(warm_start=...)``) that serves
  every unchanged-prefix evaluation cell from cache and optionally
  publishes the refreshed winner to the serving layer's snapshot store.
"""

from .buffer import ArrivalBuffer
from .engine import ArrivalReport, StreamingEngine

__all__ = ["ArrivalBuffer", "ArrivalReport", "StreamingEngine"]
