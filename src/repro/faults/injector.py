"""The runtime half of fault injection: matching events against a plan.

A :class:`FaultInjector` owns one :class:`~repro.faults.plan.FaultPlan`
plus the mutable trigger state (per-rule event counters, the seeded RNG)
and answers the only question a seam ever asks: *"an event just passed
through site S with detail D — does any rule fire?"*.  Matching is
first-rule-wins in plan order, and every counter mutation happens under
one lock, so concurrent seams (server threads, dispatch lanes) observe a
single consistent firing sequence.
"""

from __future__ import annotations

import random
import threading

from .plan import FaultPlan, FaultRule

__all__ = ["FaultInjector", "garble"]


def garble(payload: bytes) -> bytes:
    """Deterministically corrupt a byte payload (bit-flip its head).

    Flipping the leading bytes breaks any framed format at its magic
    number / opcode (pickle protocol byte, ``.npy`` magic), so consumers
    fail with a parse error or a digest mismatch instead of silently
    accepting shifted data — exactly how real wire corruption surfaces
    once checksums are involved.
    """
    if not payload:
        return payload
    head = bytes(b ^ 0xFF for b in payload[:8])
    return head + payload[8:]


class FaultInjector:
    """Deterministic event-to-rule matcher for one fault plan."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._rng = random.Random(plan.seed)
        self._seen = [0] * len(plan.rules)
        self._fired = [0] * len(plan.rules)

    def fire(self, site: str, detail: str = "") -> FaultRule | None:
        """Return the first rule firing for this event, or ``None``.

        Each rule keeps its own count of *matching* events (site and
        ``match`` filter), opens its window after ``after`` clean
        passages, and closes it after ``count`` firings.  An exhausted
        rule stops shadowing later rules on the same site, so plans can
        express sequences ("stall once, then crash").
        """
        with self._lock:
            for position, rule in enumerate(self.plan.rules):
                if rule.site != site:
                    continue
                if rule.match and rule.match not in detail:
                    continue
                self._seen[position] += 1
                if self._seen[position] <= rule.after:
                    continue
                if rule.count is not None and self._fired[position] >= rule.count:
                    continue
                if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                self._fired[position] += 1
                return rule
            return None

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-rule ``{site/action: {seen, fired}}`` — chaos-run telemetry."""
        with self._lock:
            return {
                f"{rule.site}:{rule.action}[{position}]": {
                    "seen": self._seen[position],
                    "fired": self._fired[position],
                }
                for position, rule in enumerate(self.plan.rules)
            }

    def __repr__(self) -> str:
        fired = sum(self._fired)
        return f"FaultInjector(plan={self.plan!r}, fired={fired})"
