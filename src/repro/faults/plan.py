"""Fault plans: declarative, replayable descriptions of injected failures.

A :class:`FaultPlan` is the unit of chaos: a seed plus an ordered list of
:class:`FaultRule` entries, each binding one **fault site** (a named seam
compiled into the production code — see :mod:`repro.faults`) to one
**action** and a deterministic trigger window.  Because triggers are
counter-based (``after``/``count``) and the only randomness is a seeded
RNG, running the same plan against the same workload reproduces the same
failures — a chaos run that exposed a bug is replayable as a regression
test by pasting its plan.

Plans serialize to JSON (``to_json``/``from_json``/``load``/``dump``) so
``python -m repro.benchmarking --fault-plan plan.json`` can drive a chaos
run from the command line.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

__all__ = ["FaultPlan", "FaultRule", "InjectedFault", "FAULT_ACTIONS"]


class InjectedFault(RuntimeError):
    """A failure raised on purpose at a fault seam.

    Deliberately *not* a :class:`ConnectionError`/:class:`OSError`
    subclass: seams decide explicitly how an injected fault surfaces
    (dropping a connection, killing a worker, aborting a claim), so a
    generic degradation path can never quietly absorb one by accident.
    """


#: The action vocabulary seams understand.  A seam only reacts to the
#: actions that make sense at its site and ignores the rest, so a plan
#: cannot make a seam do something the production failure mode could not.
FAULT_ACTIONS = frozenset(
    {
        "error",  # raise InjectedFault at the site
        "crash",  # kill the owning component (worker server: listener + lanes)
        "stall",  # sleep for ``seconds`` before proceeding
        "corrupt",  # garble the bytes flowing through the site
        "drop",  # sever the connection without replying
        "http_503",  # answer one HTTP request with 503 Service Unavailable
    }
)


@dataclass(frozen=True)
class FaultRule:
    """One deterministic failure: *where*, *what*, and *when*.

    Parameters
    ----------
    site:
        Exact fault-site name (see the site registry in
        :mod:`repro.faults`); a rule never fires anywhere else.
    action:
        One of :data:`FAULT_ACTIONS`.
    after:
        Number of matching passages through the site that go through
        cleanly before the rule starts firing (``after=2`` → the third
        matching event is the first to fail).
    count:
        How many events fire once the window opens; ``None`` fires
        forever.  The default of 1 models the common one-shot fault.
    seconds:
        Stall duration for ``action="stall"``.
    probability:
        Seeded-RNG gate applied after the counter window; 1.0 (default)
        keeps triggers fully counter-deterministic.  Values below 1.0 are
        reproducible only for a fixed thread interleaving.
    match:
        Substring filter on the event's detail string (e.g. a document
        name or ``host:port``); empty matches everything.
    """

    site: str
    action: str
    after: int = 0
    count: int | None = 1
    seconds: float = 0.0
    probability: float = 1.0
    match: str = ""

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; choose one of "
                f"{sorted(FAULT_ACTIONS)}"
            )
        if not self.site:
            raise ValueError("a fault rule needs a site name")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 (or None for unlimited)")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")

    def to_record(self) -> dict:
        record: dict[str, Any] = {"site": self.site, "action": self.action}
        if self.after:
            record["after"] = self.after
        if self.count != 1:
            record["count"] = self.count
        if self.seconds:
            record["seconds"] = self.seconds
        if self.probability != 1.0:
            record["probability"] = self.probability
        if self.match:
            record["match"] = self.match
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "FaultRule":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - set of names
        unknown = set(record) - known
        if unknown:
            raise ValueError(f"unknown fault-rule fields {sorted(unknown)}")
        return cls(**dict(record))


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered rule list: one replayable chaos scenario."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    @classmethod
    def of(cls, *rules: FaultRule, seed: int = 0, name: str = "") -> "FaultPlan":
        """Convenience constructor: ``FaultPlan.of(rule, rule, ...)``."""
        return cls(rules=rules, seed=seed, name=name)

    # -- serialization ---------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "name": self.name,
                "rules": [rule.to_record() for rule in self.rules],
            },
            indent=1,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        record = json.loads(text)
        if not isinstance(record, dict) or not isinstance(record.get("rules"), list):
            raise ValueError("a fault plan is an object with a 'rules' list")
        return cls(
            rules=tuple(FaultRule.from_record(rule) for rule in record["rules"]),
            seed=int(record.get("seed", 0)),
            name=str(record.get("name", "")),
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def dump(self, path: str | os.PathLike) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    def sites(self) -> Iterable[str]:
        return sorted({rule.site for rule in self.rules})

    def __repr__(self) -> str:
        label = f"name={self.name!r}, " if self.name else ""
        return f"FaultPlan({label}seed={self.seed}, rules={len(self.rules)})"
