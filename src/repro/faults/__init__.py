"""Deterministic fault injection for chaos-testing the whole stack.

The fleet this system targets fails in boring, repeatable ways — spot
instances die mid-task, the object store browns out, a partition eats a
conditional PUT's response — and the recovery machinery (task
resubmission, lane rejoin, bounded retry, the store circuit breaker,
stale-claim reclaim) only stays honest if those failures are *exercised
systematically*.  This package makes them injectable, deterministic and
replayable:

- **Sites** are named seams compiled into the production code paths (the
  registry below).  With no plan installed a seam is one module-global
  ``None`` check — cheap enough to leave in the hot paths permanently
  (the ``bench_perf_chaos`` benchmark gates the overhead at <2%).
- **Plans** (:class:`FaultPlan`) bind sites to actions with counter-based
  trigger windows and a seed, so every chaos run is replayable byte for
  byte — see :mod:`repro.faults.plan`.
- :func:`install_plan` / :func:`clear_plan` activate a plan process-wide;
  ``python -m repro.benchmarking --fault-plan plan.json`` does the same
  from the CLI.

Site registry
-------------
======================== =============================== =======================
site                     detail                          honored actions
======================== =============================== =======================
``remote.server.task``   ``host:port`` of the worker     ``crash`` (listener and
                                                         connection die mid-task),
                                                         ``drop`` (connection only),
                                                         ``stall``, ``corrupt``
                                                         (garbled outcome frame)
``remote.lane.blob_put`` blob digest                     ``corrupt`` (garbled
                                                         payload; the worker's
                                                         digest check refuses it)
``store.client.request`` ``METHOD /path``                ``error`` (simulated
                                                         transport failure),
                                                         ``stall``
``store.client.blob``    blob digest                     ``corrupt`` (payload
                                                         garbled before decode)
``store.server.request`` ``METHOD /path``                ``http_503``, ``stall``
``store.server.doc_put`` quoted document name            ``drop`` (write applied,
                                                         response lost — a
                                                         partition mid-CAS)
``manifest.claim``       worker id                       ``error`` (die between
                                                         claim and checkpoint)
``runner.checkpoint``    worker id (or ``""``)           ``error`` (die right
                                                         after a checkpoint)
``frame.chunk_read``     chunk blob digest               ``error`` (torn/short
                                                         read: the chunk comes
                                                         back truncated),
                                                         ``corrupt`` (garbled
                                                         page), ``stall`` —
                                                         digest verification
                                                         catches both and the
                                                         read retries, falling
                                                         back from mmap to
                                                         ``get_blob`` (see
                                                         ``repro.frame.chunked``)
======================== =============================== =======================

Seams call :func:`fire` and interpret the returned rule themselves, so a
site only ever produces failures its real-world counterpart could.
``stall`` is handled centrally (the event sleeps, then proceeds cleanly).
"""

from __future__ import annotations

import time

from .injector import FaultInjector, garble
from .plan import FAULT_ACTIONS, FaultPlan, FaultRule, InjectedFault

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FaultInjector",
    "InjectedFault",
    "FAULT_ACTIONS",
    "install_plan",
    "clear_plan",
    "active_injector",
    "fire",
    "check",
    "garble",
]

#: The process-wide injector. ``None`` (the default) keeps every seam on
#: its zero-cost path; tests and the ``--fault-plan`` CLI flag install one.
_ACTIVE: FaultInjector | None = None


def install_plan(plan: FaultPlan) -> FaultInjector:
    """Activate ``plan`` process-wide and return its injector."""
    global _ACTIVE
    _ACTIVE = FaultInjector(plan)
    return _ACTIVE


def clear_plan() -> None:
    """Deactivate fault injection (idempotent)."""
    global _ACTIVE
    _ACTIVE = None


def active_injector() -> FaultInjector | None:
    """The installed injector, or ``None`` when injection is off."""
    return _ACTIVE


def fire(site: str, detail: str = "") -> FaultRule | None:
    """Report one event at ``site``; return the rule that fires, if any.

    ``stall`` rules are handled here (sleep, then proceed as if nothing
    fired) so every seam gets stalls for free; any other firing rule is
    returned for the seam to interpret.  With no plan installed this is a
    single global read — the seams stay in production code permanently.
    """
    injector = _ACTIVE
    if injector is None:
        return None
    rule = injector.fire(site, detail)
    if rule is not None and rule.action == "stall":
        time.sleep(rule.seconds)
        return None
    return rule


def check(site: str, detail: str = "") -> None:
    """Seam helper for sites whose only failure mode is dying in place."""
    rule = fire(site, detail)
    if rule is not None and rule.action == "error":
        raise InjectedFault(f"injected fault at {site} ({detail})")
