"""Feature-gated chunk engines for frame row gathering.

The framer needs one primitive from a frame: *give me rows ``[a, b)`` as
a float64 row-major block*.  The default engine is pure numpy over
mmap'd ``.npy`` chunks — always available, no dependencies, and the one
every byte-identity guarantee is stated against.  ``REPRO_FRAME_ENGINE``
selects an experimental alternative:

- ``numpy`` (default): ``frame.gather`` — column loops over mmap'd
  chunks.
- ``arrow`` / ``duckdb``: assemble the row range as an Arrow table from
  the chunk buffers and let DuckDB produce the float64 block (a
  vectorized cast + column stack).  This is the hook where Parquet
  chunk payloads and SQL window-function framing plug in; today it is an
  **experimental** residence for the same bytes.

When the requested engine's dependency is missing (neither ``pyarrow``
nor ``duckdb`` ships in the default environment) the gate warns once and
falls back to numpy — an environment variable must never turn into a
crash at frame-read time.  Any per-call engine error likewise degrades
to the numpy path: engines may differ in speed, never in bytes.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

__all__ = ["active_engine", "gather_rows", "ENGINE_ENV"]

#: Environment variable naming the chunk engine; unset means numpy.
ENGINE_ENV = "REPRO_FRAME_ENGINE"

_KNOWN_ENGINES = ("numpy", "arrow", "duckdb")

#: Engines we already warned about, so a long run logs each downgrade once.
_WARNED: set[str] = set()


def _warn_once(requested: str, reason: str) -> None:
    if requested not in _WARNED:
        _WARNED.add(requested)
        warnings.warn(
            f"frame engine {requested!r} unavailable ({reason}); "
            f"falling back to the numpy chunk engine.",
            RuntimeWarning,
            stacklevel=3,
        )


def active_engine() -> str:
    """Resolve the configured engine to one that can actually run here."""
    requested = os.environ.get(ENGINE_ENV, "numpy").strip().lower() or "numpy"
    if requested not in _KNOWN_ENGINES:
        _warn_once(requested, "unknown engine name")
        return "numpy"
    if requested == "numpy":
        return "numpy"
    try:
        import duckdb  # noqa: F401
        import pyarrow  # noqa: F401
    except ImportError as exc:
        _warn_once(requested, f"missing dependency: {exc}")
        return "numpy"
    return requested


def gather_rows(frame, start: int, stop: int) -> np.ndarray:
    """Rows ``[start, stop)`` of ``frame`` as a float64 row-major block."""
    if active_engine() != "numpy":
        try:
            return _gather_rows_duckdb(frame, start, stop)
        except Exception as exc:  # engine bugs degrade, never corrupt
            _warn_once("duckdb-call", f"engine error: {exc}")
    return frame.gather(start, stop)


def _gather_rows_duckdb(frame, start: int, stop: int) -> np.ndarray:
    """Experimental Arrow/DuckDB block assembly (requires both deps).

    Builds the row range as an Arrow table (one array per logical
    column) and lets DuckDB cast and stack it.  The bytes must equal the
    numpy path exactly — the parity suite runs against whatever engine
    is active — so the cast target is pinned to DOUBLE.
    """
    import duckdb
    import pyarrow as pa

    names = frame.names
    block = frame.gather(start, stop)
    table = pa.table({name: pa.array(block[:, j]) for j, name in enumerate(names)})
    columns = duckdb.from_arrow(table).fetchnumpy()
    stacked = np.column_stack([np.asarray(columns[name], dtype=float) for name in names])
    return np.ascontiguousarray(stacked, dtype=float)
