"""Streaming supervised-window framing pushed down onto columnar frames.

:func:`repro.transforms.window.make_supervised_windows` materializes the
full lag tensor: ``n_windows x (lookback * n_series)`` floats in one
allocation, which for month-long high-frequency series is the single
biggest resident object in a run — often bigger than the data itself by
a factor of ``lookback``.  :class:`ChunkedWindowFramer` streams the same
tensor in **blocks**:

- the source stays columnar (a :class:`~repro.frame.frame.TimeSeriesFrame`
  or a :class:`~repro.frame.chunked.SpilledFrame`; plain arrays are
  accepted for convenience) and only ``block_windows + lookback +
  horizon - 1`` rows are ever materialized at once;
- each block applies the *exact* strided recipe of
  ``make_supervised_windows`` to its row range, so the concatenation of
  all blocks is byte-identical to the one-shot tensor — the parity tests
  assert ``tobytes()`` equality across dtypes, odd lengths, edge-case
  lookback/horizon and chunk-boundary-straddling windows;
- against a spilled frame the row ranges are gathered from mmap'd
  chunks, so peak anonymous memory is one block, not one tensor.

Block sizing defaults to a ~64 MiB window budget clamped to
``[256, n_windows]``; callers with streaming estimators
(:class:`repro.ml.linear.StreamingRidge`) consume :meth:`blocks`
directly, everyone else gets :meth:`materialize` as a drop-in
``make_supervised_windows``.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_positive_int
from .engine import gather_rows
from .frame import is_frame

__all__ = ["ChunkedWindowFramer"]

#: Default per-block materialization budget (bytes of feature+target
#: windows), before clamping to ``[_MIN_BLOCK_WINDOWS, n_windows]``.
_BLOCK_BUDGET_BYTES = 64 << 20

#: Floor on the block size: below this the per-block strided-framing
#: overhead dominates and streaming stops paying for itself.
_MIN_BLOCK_WINDOWS = 256


class ChunkedWindowFramer:
    """Stream ``make_supervised_windows`` output in bounded blocks.

    Parameters mirror :func:`make_supervised_windows` (``lookback``,
    ``horizon``, ``target_column``, ``flatten``) plus:

    block_windows:
        Windows per yielded block; default derives from
        ``memory_budget``.
    memory_budget:
        Approximate bytes of materialized windows per block used to size
        the default ``block_windows``.
    """

    def __init__(
        self,
        source,
        lookback: int,
        horizon: int = 1,
        target_column: int | None = None,
        flatten: bool = True,
        block_windows: int | None = None,
        memory_budget: int = _BLOCK_BUDGET_BYTES,
    ):
        self.lookback = check_positive_int(lookback, "lookback")
        self.horizon = check_positive_int(horizon, "horizon")
        self.target_column = target_column
        self.flatten = bool(flatten)
        if is_frame(source):
            self.source = source
            n_samples, n_series = source.shape
        else:
            # Plain arrays stream too — row ranges are then slices, and
            # the framer degrades into a block-wise make_supervised_windows.
            self.source = as_2d_array(source)
            n_samples, n_series = self.source.shape
        self.n_series = int(n_series)
        self.n_windows = n_samples - self.lookback - self.horizon + 1
        if self.n_windows <= 0:
            raise ValueError(
                f"Series of length {n_samples} is too short for "
                f"lookback={self.lookback} and horizon={self.horizon}."
            )
        if block_windows is None:
            window_bytes = (self.lookback + self.horizon) * self.n_series * 8
            block_windows = int(memory_budget) // max(window_bytes, 1)
        self.block_windows = max(min(int(block_windows), self.n_windows), 1)
        if self.n_windows >= _MIN_BLOCK_WINDOWS:
            self.block_windows = max(self.block_windows, _MIN_BLOCK_WINDOWS)

    # -- streaming -------------------------------------------------------------
    def _rows(self, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` of the source as a float64 2-D block."""
        if is_frame(self.source):
            return gather_rows(self.source, start, stop)
        return self.source[start:stop]

    def blocks(self):
        """Yield ``(features, targets)`` per block, in window order.

        Each block covers windows ``[w0, w0 + m)`` and is computed from
        source rows ``[w0, w0 + m + lookback + horizon - 1)`` with the
        same strided recipe as :func:`make_supervised_windows` — window
        ``i`` never sees different bytes because of where a block (or a
        spilled chunk) boundary fell.
        """
        lookback, horizon = self.lookback, self.horizon
        for w0 in range(0, self.n_windows, self.block_windows):
            m = min(self.block_windows, self.n_windows - w0)
            rows = self._rows(w0, w0 + m + lookback + horizon - 1)
            feature_view = np.lib.stride_tricks.sliding_window_view(rows, lookback, axis=0)
            features = feature_view[:m].transpose(0, 2, 1).copy()
            target_view = np.lib.stride_tricks.sliding_window_view(rows, horizon, axis=0)
            targets = target_view[lookback : lookback + m].transpose(0, 2, 1)
            if self.target_column is not None:
                targets = targets[:, :, [self.target_column]]
            targets = targets.copy().reshape(m, -1)
            if self.flatten:
                features = features.reshape(m, lookback * self.n_series)
            if targets.shape[1] == 1:
                targets = targets.ravel()
            yield features, targets

    # -- materialization -------------------------------------------------------
    def materialize(self) -> tuple[np.ndarray, np.ndarray]:
        """The full ``(features, targets)`` pair, byte-identical to
        ``make_supervised_windows(source, ...)``.

        Concatenating the blocks reproduces the one-shot tensor exactly
        (same values, dtype, order and contiguity); out-of-core callers
        should consume :meth:`blocks` instead of calling this.
        """
        features_parts, target_parts = [], []
        for features, targets in self.blocks():
            features_parts.append(features)
            target_parts.append(targets)
        if len(features_parts) == 1:
            return features_parts[0], target_parts[0]
        return np.concatenate(features_parts), np.concatenate(target_parts)

    def __repr__(self) -> str:
        return (
            f"ChunkedWindowFramer(n_windows={self.n_windows}, "
            f"lookback={self.lookback}, horizon={self.horizon}, "
            f"block_windows={self.block_windows})"
        )
