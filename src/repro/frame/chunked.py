"""Chunked on-disk frames spilled through the ``StoreBackend`` blob family.

A :class:`~repro.frame.frame.TimeSeriesFrame` whose supervised-window
tensor would not fit in RAM is **spilled**: each column's physical buffer
is cut into fixed-row chunks, every chunk is published as an ordinary
content-addressed blob (the same ``.npy`` objects the data plane already
spills and syncs), and a tiny JSON-able *spec* records the layout —
schema version, row count, chunk size, and per column the logical dtype,
encoding, chunk digest list, full-column digest and (for
dictionary-encoded columns) the dictionary blob.

:class:`SpilledFrame` is the out-of-core residence over such a spec.  It
honors the full :class:`~repro.frame.frame.BaseFrame` contract:

- ``slice_rows`` / ``select`` adjust the row window / column set without
  touching a byte (splits share one chunk cache);
- ``gather`` decodes a bounded row range chunk by chunk — on a local
  backend each chunk is ``np.load(..., mmap_mode="r")`` straight off the
  blob file, so pages stay **file-backed** and never count against an
  anonymous-memory budget (``RLIMIT_DATA``); remote backends fall back to
  ``get_blob`` with a small LRU;
- ``fingerprint()`` equals the in-RAM frame's fingerprint for the same
  logical content: full columns reuse the digests recorded at spill time,
  row slices are hashed incrementally over the chunk slices — the same
  byte stream ``array_digest`` would see.

Every chunk read passes the ``frame.chunk_read`` fault seam and a digest
check with bounded retries (an mmap that fails verification is re-read
through ``get_blob``), so torn or short reads heal instead of silently
corrupting a lag matrix; persistent corruption raises
:class:`FrameIntegrityError` loudly.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from .. import faults
from ..exceptions import DataQualityError, InvalidParameterError
from ..faults import garble
from ..store.base import StoreError
from ..store.digest import array_digest
from .frame import BaseFrame, TimeSeriesFrame

__all__ = [
    "FRAME_SCHEMA_VERSION",
    "SpilledFrame",
    "FrameIntegrityError",
    "spill_frame",
    "load_frame",
]

#: Version stamp embedded in every spill spec; a reader refuses specs it
#: does not understand instead of mis-decoding chunk layouts.
FRAME_SCHEMA_VERSION = 1

#: Default chunk sizing: aim for ~4 MiB of physical bytes per row-chunk
#: across the frame — big enough to amortize per-blob overhead, small
#: enough that a handful of cached chunks stays negligible next to any
#: realistic memory budget.
_TARGET_CHUNK_BYTES = 4 << 20

#: Chunk reads that fail verification are retried this many times before
#: the frame gives up loudly.
_READ_ATTEMPTS = 3

#: LRU capacity of the shared chunk cache (chunks, not bytes — local
#: chunks are mmaps and cost no anonymous memory anyway).
_CACHE_CHUNKS = 16


class FrameIntegrityError(StoreError):
    """A spilled chunk failed digest verification after bounded retries."""


def _digest_size_of(digest: str) -> int:
    return len(digest) // 2


class _ChunkCache:
    """Shared LRU of verified chunks, keyed by digest.

    One cache object is shared by a spilled frame and every view derived
    from it, so a train/test split of the same base reads each chunk
    once.  Deliberately not pickled — a worker rebuilds its own.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int = _CACHE_CHUNKS):
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()

    def get(self, digest: str) -> np.ndarray | None:
        chunk = self._entries.get(digest)
        if chunk is not None:
            self._entries.move_to_end(digest)
        return chunk

    def put(self, digest: str, chunk: np.ndarray) -> None:
        self._entries[digest] = chunk
        self._entries.move_to_end(digest)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def drop(self, digest: str) -> None:
        self._entries.pop(digest, None)


def spill_frame(
    frame: TimeSeriesFrame,
    backend,
    chunk_rows: int | None = None,
    target_chunk_bytes: int = _TARGET_CHUNK_BYTES,
) -> "SpilledFrame":
    """Publish ``frame``'s columns as chunked blobs; return the spilled twin.

    Chunk blobs are content-addressed, so re-spilling the same frame (or
    two frames sharing columns) writes nothing new — ``has_blob`` dedups
    exactly like the data plane's remote sync.  The returned
    :class:`SpilledFrame` fingerprints identically to ``frame``.
    """
    if not getattr(frame, "is_timeseries_frame", False):
        frame = TimeSeriesFrame.from_array(frame)
    if chunk_rows is None:
        row_bytes = sum(column.values.itemsize for column in frame.columns)
        chunk_rows = max(1024, int(target_chunk_bytes) // max(row_bytes, 1))
    chunk_rows = int(chunk_rows)
    if chunk_rows < 1:
        raise InvalidParameterError(f"chunk_rows must be >= 1, got {chunk_rows}.")

    n_rows = len(frame)
    columns_spec = []
    for column in frame.columns:
        values = column.values
        chunks = []
        for start in range(0, n_rows, chunk_rows):
            chunk = values[start : start + chunk_rows]
            digest = array_digest(np.ascontiguousarray(chunk))
            if not backend.has_blob(digest) and not backend.put_blob(digest, chunk):
                raise StoreError(
                    f"could not spill chunk {digest} of column {column.name!r} "
                    f"to {backend.describe()}."
                )
            chunks.append(digest)
        spec = {
            "name": column.name,
            "dtype": column.dtype.str,
            "physical_dtype": values.dtype.str,
            "encoding": column.encoding,
            "chunks": chunks,
            # Recorded at spill time so full-column fingerprints never
            # re-hash — and match the in-RAM frame's digests exactly.
            "digest": column.digest()[0],
            "dictionary": None,
            "dictionary_dtype": None,
        }
        if column.dictionary is not None:
            dict_digest = array_digest(column.dictionary)
            if not backend.has_blob(dict_digest) and not backend.put_blob(
                dict_digest, column.dictionary
            ):
                raise StoreError(
                    f"could not spill dictionary {dict_digest} of column "
                    f"{column.name!r} to {backend.describe()}."
                )
            spec["dictionary"] = dict_digest
            spec["dictionary_dtype"] = column.dictionary.dtype.str
        columns_spec.append(spec)

    return SpilledFrame(
        {
            "schema": FRAME_SCHEMA_VERSION,
            "n_rows": n_rows,
            "chunk_rows": chunk_rows,
            "columns": columns_spec,
        },
        backend,
    )


def load_frame(spec: dict, backend) -> "SpilledFrame":
    """Reconstruct a spilled frame from its spec against ``backend``."""
    return SpilledFrame(spec, backend)


class SpilledFrame(BaseFrame):
    """Out-of-core frame residence: a spill spec plus a blob backend.

    Picklable (spec + backend + view window travel; caches do not), so a
    spilled frame ships to process and remote workers as-is — workers
    pull only the chunks their row window actually touches.
    """

    def __init__(self, spec: dict, backend, start: int = 0, stop: int | None = None,
                 columns: tuple[int, ...] | None = None, _cache: _ChunkCache | None = None):
        if spec.get("schema") != FRAME_SCHEMA_VERSION:
            raise DataQualityError(
                f"unsupported frame spec schema {spec.get('schema')!r} "
                f"(this reader speaks {FRAME_SCHEMA_VERSION})."
            )
        self.spec = spec
        self.backend = backend
        self._start = int(start)
        self._stop = int(spec["n_rows"]) if stop is None else int(stop)
        self._column_ids = (
            tuple(range(len(spec["columns"]))) if columns is None else tuple(columns)
        )
        if not self._column_ids:
            raise DataQualityError("a SpilledFrame view needs at least one column.")
        self._cache = _ChunkCache() if _cache is None else _cache
        self._dicts: dict[int, np.ndarray] = {}
        self._fingerprint: tuple | None = None
        self._slice_digests: dict[tuple[int, int, int], str] = {}

    # -- pickling --------------------------------------------------------------
    def __getstate__(self):
        return {
            "spec": self.spec,
            "backend": self.backend,
            "start": self._start,
            "stop": self._stop,
            "columns": self._column_ids,
        }

    def __setstate__(self, state):
        self.__init__(
            state["spec"], state["backend"], state["start"], state["stop"], state["columns"]
        )

    # -- shape -----------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        columns = self.spec["columns"]
        return tuple(columns[j]["name"] for j in self._column_ids)

    @property
    def dtypes(self) -> tuple[str, ...]:
        columns = self.spec["columns"]
        return tuple(columns[j]["dtype"] for j in self._column_ids)

    def __len__(self) -> int:
        return max(self._stop - self._start, 0)

    # -- views -----------------------------------------------------------------
    def select(self, names) -> "SpilledFrame":
        by_name = {self.spec["columns"][j]["name"]: j for j in self._column_ids}
        missing = [name for name in names if name not in by_name]
        if missing:
            raise KeyError(f"unknown frame columns: {missing}; have {list(self.names)}")
        return SpilledFrame(
            self.spec, self.backend, self._start, self._stop,
            tuple(by_name[name] for name in names), _cache=self._cache,
        )

    def slice_rows(self, start: int, stop: int) -> "SpilledFrame":
        start, stop, _ = slice(start, stop).indices(len(self))
        stop = max(stop, start)
        return SpilledFrame(
            self.spec, self.backend, self._start + start, self._start + stop,
            self._column_ids, _cache=self._cache,
        )

    # -- chunk IO --------------------------------------------------------------
    def _mmap_chunk(self, digest: str) -> np.ndarray | None:
        """Memory-map a chunk blob off a local backend (None when not local).

        File-backed mappings are the whole point of the out-of-core path:
        the kernel pages chunk bytes in and out on demand and none of it
        counts as anonymous memory, so a lag tensor built from mmap'd
        chunks respects an ``RLIMIT_DATA`` budget the materialized tensor
        would blow through.
        """
        disk = getattr(self.backend, "disk", None)
        if disk is None:
            return None
        try:
            path = disk.blob_path(digest)
            if not path.is_file():
                return None
            return np.load(path, mmap_mode="r", allow_pickle=False)
        except (OSError, ValueError):
            return None

    def _read_chunk(self, digest: str) -> np.ndarray:
        """One verified chunk: cache → mmap → ``get_blob``, healing torn reads.

        Every attempt passes the ``frame.chunk_read`` seam (detail = the
        chunk digest) and a full digest check.  ``error`` rules model a
        torn/short read, ``corrupt`` a garbled page — both are caught by
        verification and retried; after an mmap fails verification the
        retry re-reads through ``get_blob`` in case the mapping itself is
        the problem.  Persistent mismatch raises loudly: a lag matrix
        built from a bad chunk must never reach a model.
        """
        cached = self._cache.get(digest)
        if cached is not None:
            return cached
        mmap_ok = True
        for attempt in range(_READ_ATTEMPTS):
            rule = faults.fire("frame.chunk_read", digest)
            chunk = self._mmap_chunk(digest) if mmap_ok else None
            if chunk is None:
                chunk = self.backend.get_blob(digest)
            if rule is not None and chunk is not None:
                if rule.action == "error":
                    # A torn read: the caller saw only part of the chunk.
                    chunk = np.ascontiguousarray(chunk)[: max(len(chunk) // 2, 0)]
                elif rule.action == "corrupt":
                    page = np.ascontiguousarray(chunk)
                    chunk = np.frombuffer(
                        garble(page.tobytes()), dtype=page.dtype
                    ).reshape(page.shape)
            if chunk is not None and array_digest(chunk) == digest:
                self._cache.put(digest, chunk)
                return chunk
            # Verification failed (or the blob is gone): distrust the
            # mapping and any stale cache entry before trying again.
            mmap_ok = False
            self._cache.drop(digest)
        raise FrameIntegrityError(
            f"chunk {digest} failed verification {_READ_ATTEMPTS} times "
            f"(backend: {self.backend.describe()})."
        )

    def _dictionary(self, column_id: int) -> np.ndarray:
        mapping = self._dicts.get(column_id)
        if mapping is None:
            spec = self.spec["columns"][column_id]
            mapping = self._read_chunk(spec["dictionary"])
            self._dicts[column_id] = mapping
        return mapping

    # -- materialization -------------------------------------------------------
    def gather(self, start: int, stop: int, out: np.ndarray | None = None, dtype=float) -> np.ndarray:
        start, stop, _ = slice(start, stop).indices(len(self))
        rows = max(stop - start, 0)
        if out is None:
            out = np.empty((rows, len(self._column_ids)), dtype=dtype)
        lo = self._start + start
        hi = lo + rows
        chunk_rows = int(self.spec["chunk_rows"])
        for j, column_id in enumerate(self._column_ids):
            spec = self.spec["columns"][column_id]
            mapping = None if spec["dictionary"] is None else self._dictionary(column_id)
            filled = 0
            for chunk_index in range(lo // chunk_rows, (max(hi, lo + 1) - 1) // chunk_rows + 1):
                if filled >= rows:
                    break
                chunk = self._read_chunk(spec["chunks"][chunk_index])
                c_lo = max(lo - chunk_index * chunk_rows, 0)
                c_hi = min(hi - chunk_index * chunk_rows, len(chunk))
                if c_hi <= c_lo:
                    continue
                part = chunk[c_lo:c_hi]
                if mapping is not None:
                    part = mapping[part]
                out[filled : filled + len(part), j] = part
                filled += len(part)
        return out[:rows]

    def column(self, name: str) -> np.ndarray:
        """Logical values of one column, fully materialized."""
        index = self.names.index(name)
        return np.ascontiguousarray(self.gather(0, len(self))[:, index])

    def to_frame(self) -> TimeSeriesFrame:
        """Materialize back into an in-RAM frame (tests and small views)."""
        from .frame import FrameColumn

        columns = []
        for column_id in self._column_ids:
            spec = self.spec["columns"][column_id]
            physical = self._column_physical(column_id)
            if spec["dictionary"] is None:
                columns.append(FrameColumn(spec["name"], physical))
            else:
                columns.append(
                    FrameColumn(spec["name"], physical, self._dictionary(column_id))
                )
        return TimeSeriesFrame(columns)

    def _column_physical(self, column_id: int) -> np.ndarray:
        """The row window of one column's physical buffer, materialized."""
        spec = self.spec["columns"][column_id]
        chunk_rows = int(self.spec["chunk_rows"])
        out = np.empty(len(self), dtype=np.dtype(spec["physical_dtype"]))
        filled = 0
        lo, hi = self._start, self._stop
        for chunk_index in range(lo // chunk_rows, (max(hi, lo + 1) - 1) // chunk_rows + 1):
            if filled >= len(out):
                break
            chunk = self._read_chunk(spec["chunks"][chunk_index])
            c_lo = max(lo - chunk_index * chunk_rows, 0)
            c_hi = min(hi - chunk_index * chunk_rows, len(chunk))
            if c_hi <= c_lo:
                continue
            part = chunk[c_lo:c_hi]
            out[filled : filled + len(part)] = part
            filled += len(part)
        return out[:filled]

    # -- identity --------------------------------------------------------------
    def _sliced_digest(self, column_id: int) -> str:
        """Digest of the row window of one column's physical bytes.

        A full window reuses the digest recorded at spill time; a proper
        slice is hashed incrementally across the chunk slices — the exact
        byte stream ``array_digest`` sees on the in-RAM view, so spilled
        and resident fingerprints agree representation-free.
        """
        spec = self.spec["columns"][column_id]
        if self._start == 0 and self._stop == int(self.spec["n_rows"]):
            return spec["digest"]
        key = (column_id, self._start, self._stop)
        memo = self._slice_digests.get(key)
        if memo is not None:
            return memo
        chunk_rows = int(self.spec["chunk_rows"])
        hasher = hashlib.blake2b(digest_size=_digest_size_of(spec["digest"]))
        lo, hi = self._start, self._stop
        for chunk_index in range(lo // chunk_rows, (hi - 1) // chunk_rows + 1) if hi > lo else ():
            chunk = self._read_chunk(spec["chunks"][chunk_index])
            c_lo = max(lo - chunk_index * chunk_rows, 0)
            c_hi = min(hi - chunk_index * chunk_rows, len(chunk))
            if c_hi <= c_lo:
                continue
            hasher.update(np.ascontiguousarray(chunk[c_lo:c_hi]).data)
        digest = hasher.hexdigest()
        self._slice_digests[key] = digest
        return digest

    def fingerprint(self) -> tuple:
        if self._fingerprint is None:
            entries = []
            for column_id in self._column_ids:
                spec = self.spec["columns"][column_id]
                digests = (self._sliced_digest(column_id),)
                if spec["dictionary"] is not None:
                    digests += (spec["dictionary"],)
                entries.append((spec["name"], spec["dtype"], spec["encoding"]) + digests)
            self._fingerprint = ("frame", len(self), tuple(entries))
        return self._fingerprint

    def __repr__(self) -> str:
        rows, cols = self.shape
        return (
            f"SpilledFrame(rows={rows}, columns={cols}, "
            f"chunk_rows={self.spec['chunk_rows']}, backend={self.backend.describe()})"
        )
