"""Columnar time-series frames and out-of-core supervised framing.

The columnar data plane of the reproduction (see the README's
"Columnar frames & out-of-core framing" section):

- :class:`TimeSeriesFrame` — named, dtype-tagged, individually
  contiguous column buffers with dictionary-encoded low-cardinality
  columns; row slices and column selections are zero-copy views.
- :func:`spill_frame` / :class:`SpilledFrame` — the chunked on-disk
  twin, published through any ``StoreBackend``'s blob family and read
  back via mmap'd chunks with digest-verified, fault-healing reads.
- :class:`ChunkedWindowFramer` — streaming lag framing, byte-identical
  to ``make_supervised_windows`` while materializing one block at a
  time.
- :class:`FrameRef` — per-column data-plane addressing (defined in
  :mod:`repro.exec.dataplane`, re-exported here).
"""

from ..exec.dataplane import FrameColumnRef, FrameRef  # noqa: F401
from .chunked import (
    FRAME_SCHEMA_VERSION,
    FrameIntegrityError,
    SpilledFrame,
    load_frame,
    spill_frame,
)
from .engine import ENGINE_ENV, active_engine
from .frame import (
    BaseFrame,
    FrameColumn,
    TimeSeriesFrame,
    dictionary_encode,
    is_frame,
)
from .framer import ChunkedWindowFramer

__all__ = [
    "BaseFrame",
    "TimeSeriesFrame",
    "FrameColumn",
    "SpilledFrame",
    "FrameIntegrityError",
    "FrameRef",
    "FrameColumnRef",
    "ChunkedWindowFramer",
    "spill_frame",
    "load_frame",
    "dictionary_encode",
    "is_frame",
    "active_engine",
    "ENGINE_ENV",
    "FRAME_SCHEMA_VERSION",
]
