"""Columnar time-series frames: named, dtype-tagged, per-column buffers.

Every layer of the reproduction historically moved monolithic row-major
2-D ndarrays: a multivariate suite with 40 exogenous columns shipped,
hashed and pinned the whole base even when a task consumed two columns.
:class:`TimeSeriesFrame` makes the **column** the unit of addressing:

- each column is an individually contiguous 1-D buffer with its own
  name, logical dtype and content digest (memoized — selecting columns
  composes digests instead of rehashing bytes);
- low-cardinality columns (holiday flags, day-of-week, regime ids) are
  **dictionary-encoded**: the physical buffer holds small-int codes and
  the distinct values live in a tiny dictionary array;
- row slicing and column selection are zero-copy views sharing the
  parent's buffers, so splitting a frame into train/test or picking 2 of
  40 exogenous columns never touches the data.

Frames are treated as **immutable** once constructed (buffers are
exposed read-only); the digests, the data plane and the spill format all
rely on that.  Streaming growth is expressed *functionally*:
``append_rows`` returns a new frame whose columns extend the old ones,
writing in place into spare capacity of the column buffers when this
frame is the buffer's current high-water prefix (and reallocating
geometrically otherwise), so every exposed view keeps its bytes and the
incremental digest states carry across growth.  The chunked on-disk twin lives in
:mod:`repro.frame.chunked`, and :class:`repro.frame.framer.ChunkedWindowFramer`
streams supervised windows out of either residence.
"""

from __future__ import annotations

import weakref

import numpy as np

from ..exceptions import DataQualityError, InvalidParameterError
from ..store.digest import array_digest, register_append_base

__all__ = [
    "BaseFrame",
    "TimeSeriesFrame",
    "FrameColumn",
    "dictionary_encode",
    "is_frame",
]

#: Cardinality cap for automatic dictionary encoding: codes must fit a
#: single byte, or the "compression" stops paying for itself on the
#: float columns this library moves.
_DICT_MAX_CARDINALITY = 255


def is_frame(obj) -> bool:
    """True for any frame residence (in-RAM or spilled), duck-typed.

    Consumers check the marker attribute instead of importing this
    package so low-level modules (validation, the execution engine) stay
    import-cycle free.
    """
    return bool(getattr(obj, "is_timeseries_frame", False))


def _read_only(values: np.ndarray) -> np.ndarray:
    view = values.view()
    view.flags.writeable = False
    return view


def dictionary_encode(
    values: np.ndarray, max_cardinality: int = _DICT_MAX_CARDINALITY
) -> tuple[np.ndarray, np.ndarray] | None:
    """Encode a low-cardinality column as ``(codes, dictionary)``.

    Returns ``None`` when encoding does not apply: too many distinct
    values, non-finite entries (the dictionary round-trips through JSON
    in the spill spec) or a column too small to bother.  ``codes`` are
    ``uint8`` — by construction the dictionary fits one byte of code
    space — and ``dictionary[codes]`` reproduces the column exactly.
    """
    values = np.ascontiguousarray(values)
    if values.size < 16:
        return None
    if np.issubdtype(values.dtype, np.floating) and not np.isfinite(values).all():
        return None
    dictionary, codes = np.unique(values, return_inverse=True)
    if dictionary.size > min(max_cardinality, max(2, values.size // 8)):
        return None
    return codes.astype(np.uint8), dictionary


#: ``id(base) -> (weakref(base), rows_used)``: the high-water mark of a
#: capacity buffer created by ``append_rows``.  A frame may append in
#: place only when its view covers exactly ``rows_used`` rows — the
#: buffer's current tip.  Two frames sharing one buffer cannot both
#: extend it: the second sees a moved tip and reallocates instead of
#: clobbering rows the first already exposed.
_APPEND_TIPS: dict[int, tuple] = {}


def _tip_rows(base: np.ndarray) -> int | None:
    entry = _APPEND_TIPS.get(id(base))
    if entry is not None and entry[0]() is base:
        return entry[1]
    return None


def _set_tip(base: np.ndarray, rows: int) -> None:
    try:
        ref = weakref.ref(base, lambda _ref, _key=id(base): _APPEND_TIPS.pop(_key, None))
    except TypeError:  # pragma: no cover - ndarray subclasses without weakref
        return
    _APPEND_TIPS[id(base)] = (ref, int(rows))


class FrameColumn:
    """One named column: physical buffer plus optional dictionary.

    ``values`` is the physical 1-D buffer (the codes when dictionary
    encoded); ``dictionary`` maps codes back to logical values.  Both are
    exposed read-only.  ``digest()`` names the column's content — for
    encoded columns a pair (codes digest, dictionary digest) so two
    encodings of the same logical data only match when bytes match.
    """

    __slots__ = ("name", "values", "dictionary", "_digest")

    def __init__(self, name: str, values: np.ndarray, dictionary: np.ndarray | None = None):
        values = np.asarray(values)
        if values.ndim != 1:
            raise DataQualityError(
                f"frame column {name!r} must be 1-D, got shape {values.shape}."
            )
        if not values.flags.c_contiguous:
            values = np.ascontiguousarray(values)
        self.name = str(name)
        self.values = _read_only(values)
        self.dictionary = None if dictionary is None else _read_only(
            np.ascontiguousarray(dictionary)
        )
        self._digest: tuple | None = None

    @property
    def encoding(self) -> str:
        return "plain" if self.dictionary is None else "dict"

    @property
    def dtype(self) -> np.dtype:
        """Logical dtype: what :meth:`decoded` yields."""
        return self.values.dtype if self.dictionary is None else self.dictionary.dtype

    def decoded(self) -> np.ndarray:
        """Logical values: a zero-copy view for plain columns, a decode
        materialization for dictionary-encoded ones."""
        if self.dictionary is None:
            return self.values
        return self.dictionary[self.values]

    def digest(self) -> tuple:
        """Memoized content digest(s) of the physical buffer(s)."""
        if self._digest is None:
            if self.dictionary is None:
                self._digest = (array_digest(self.values),)
            else:
                self._digest = (array_digest(self.values), array_digest(self.dictionary))
        return self._digest

    def sliced(self, start: int, stop: int) -> "FrameColumn":
        """Row-sliced view sharing this column's buffers (zero copy)."""
        view = FrameColumn.__new__(FrameColumn)
        view.name = self.name
        view.values = self.values[start:stop]
        view.dictionary = self.dictionary
        view._digest = None
        return view

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return (
            f"FrameColumn({self.name!r}, n={len(self.values)}, "
            f"dtype={self.dtype.str!r}, encoding={self.encoding!r})"
        )


class BaseFrame:
    """Interface shared by every frame residence (in-RAM and spilled).

    The contract every consumer leans on:

    - ``len(frame)`` / ``shape`` / ``names`` / ``dtypes`` describe the table;
    - ``select(names)`` and ``slice_rows(start, stop)`` are cheap views;
    - ``gather(start, stop)`` materializes a bounded row range as a
      row-major float array — the only primitive the streaming framer
      needs, so out-of-core residences only have to answer bounded reads;
    - ``to_array()`` materializes the whole table (convenience for
      consumers that cannot stream; out-of-core callers should not);
    - ``fingerprint()`` is the content identity: per-column digests of
      the **sliced physical bytes**, so the same logical content
      fingerprints identically whether it lives in RAM, in shared
      memory, or in spilled chunks.
    """

    #: Duck-typing marker checked by :func:`is_frame` (and by
    #: ``repro._validation.as_2d_array``, which materializes frames for
    #: consumers that only speak 2-D arrays).
    is_timeseries_frame = True

    # Subclasses implement:  names, dtypes, __len__, select, slice_rows,
    # gather, column, fingerprint.

    @property
    def n_columns(self) -> int:
        return len(self.names)

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self), self.n_columns)

    def to_array(self, dtype=float) -> np.ndarray:
        """Materialize the full table as a row-major 2-D array."""
        return self.gather(0, len(self), dtype=dtype)

    def __repr__(self) -> str:
        rows, cols = self.shape
        return f"{type(self).__name__}(rows={rows}, columns={cols})"


class TimeSeriesFrame(BaseFrame):
    """In-RAM columnar frame over :class:`FrameColumn` buffers."""

    def __init__(self, columns: list[FrameColumn]):
        if not columns:
            raise DataQualityError("a TimeSeriesFrame needs at least one column.")
        lengths = {len(column) for column in columns}
        if len(lengths) != 1:
            raise DataQualityError(
                f"frame columns disagree on length: {sorted(lengths)}."
            )
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise DataQualityError(f"duplicate column names: {names}.")
        self._columns = list(columns)
        self._by_name = {column.name: column for column in columns}
        self._fingerprint: tuple | None = None

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_array(
        cls, X, names: list[str] | None = None, dictionary: bool = False
    ) -> "TimeSeriesFrame":
        """Split a row-major ``(n_samples, n_series)`` array into columns.

        ``dictionary=True`` additionally dictionary-encodes columns whose
        cardinality qualifies (see :func:`dictionary_encode`).
        """
        from .._validation import as_2d_array

        X = as_2d_array(X, dtype=None)
        if names is None:
            names = [f"c{j}" for j in range(X.shape[1])]
        if len(names) != X.shape[1]:
            raise InvalidParameterError(
                f"{len(names)} names for {X.shape[1]} columns."
            )
        columns = []
        for j, name in enumerate(names):
            values = np.ascontiguousarray(X[:, j])
            encoded = dictionary_encode(values) if dictionary else None
            if encoded is None:
                columns.append(FrameColumn(name, values))
            else:
                codes, mapping = encoded
                columns.append(FrameColumn(name, codes, mapping))
        return cls(columns)

    @classmethod
    def from_columns(cls, columns, dictionary: bool = False) -> "TimeSeriesFrame":
        """Build a frame from ``{name: 1-D values}`` (ordered) pairs."""
        items = columns.items() if hasattr(columns, "items") else columns
        built = []
        for name, values in items:
            values = np.ascontiguousarray(values)
            encoded = dictionary_encode(values) if dictionary else None
            if encoded is None:
                built.append(FrameColumn(name, values))
            else:
                codes, mapping = encoded
                built.append(FrameColumn(name, codes, mapping))
        return cls(built)

    # -- shape -----------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self._columns)

    @property
    def dtypes(self) -> tuple[str, ...]:
        return tuple(column.dtype.str for column in self._columns)

    @property
    def columns(self) -> tuple[FrameColumn, ...]:
        return tuple(self._columns)

    def __len__(self) -> int:
        return len(self._columns[0])

    # -- views -----------------------------------------------------------------
    def select(self, names) -> "TimeSeriesFrame":
        """Column projection: a frame sharing the selected buffers."""
        missing = [name for name in names if name not in self._by_name]
        if missing:
            raise KeyError(f"unknown frame columns: {missing}; have {list(self.names)}")
        return TimeSeriesFrame([self._by_name[name] for name in names])

    def slice_rows(self, start: int, stop: int) -> "TimeSeriesFrame":
        """Row window: a frame of zero-copy column views."""
        start, stop, _ = slice(start, stop).indices(len(self))
        stop = max(stop, start)
        return TimeSeriesFrame([column.sliced(start, stop) for column in self._columns])

    def column(self, name: str) -> np.ndarray:
        """Logical values of one column (view unless dictionary-encoded)."""
        return self._by_name[name].decoded()

    # -- materialization -------------------------------------------------------
    def gather(self, start: int, stop: int, out: np.ndarray | None = None, dtype=float) -> np.ndarray:
        """Materialize rows ``[start, stop)`` as a row-major array.

        The staging buffer is the caller's only allocation (reusable via
        ``out``); values are exactly ``as_2d_array(base)[start:stop]`` of
        the equivalent row-major array, which is what keeps the streaming
        framer byte-identical to the in-memory one.
        """
        start, stop, _ = slice(start, stop).indices(len(self))
        rows = max(stop - start, 0)
        if out is None:
            out = np.empty((rows, len(self._columns)), dtype=dtype)
        for j, column in enumerate(self._columns):
            if column.dictionary is None:
                out[:rows, j] = column.values[start:stop]
            else:
                out[:rows, j] = column.dictionary[column.values[start:stop]]
        return out[:rows]

    # -- growth ----------------------------------------------------------------
    def append_rows(self, rows) -> "TimeSeriesFrame":
        """Return a frame extending this one by ``rows`` (zero-copy growth).

        ``rows`` is ``(n_new, n_columns)`` (a single 1-D row, or a column
        vector for single-column frames, are accepted).  This frame is
        untouched — its views keep their bytes — and the new frame shares
        the same column buffers whenever possible: when this frame is the
        current high-water prefix of a column's capacity buffer, the new
        values are written into the spare capacity in place; otherwise
        the column reallocates with geometric headroom and the
        incremental digest state carries over (see
        :func:`repro.store.digest.register_append_base`), so hashing the
        grown column costs O(new bytes) either way.  Dictionary-encoded
        columns decode to plain on append — arrivals may carry values
        outside the frozen dictionary.
        """
        rows = np.asarray(rows)
        if rows.ndim == 1:
            if self.n_columns == 1:
                rows = rows.reshape(-1, 1)
            elif rows.size == self.n_columns:
                rows = rows.reshape(1, -1)
        if rows.ndim != 2 or rows.shape[1] != self.n_columns:
            raise DataQualityError(
                f"append_rows expects (n_new, {self.n_columns}) rows, got "
                f"shape {rows.shape}."
            )
        delta = len(rows)
        if delta == 0:
            return self.slice_rows(0, len(self))

        new_columns = []
        for j, column in enumerate(self._columns):
            old = column.decoded()
            addition = np.asarray(rows[:, j]).astype(
                old.dtype if column.dictionary is None else np.result_type(old.dtype, rows.dtype),
                copy=False,
            )
            n = len(old)
            base = old.base if isinstance(old.base, np.ndarray) else None
            if (
                column.dictionary is None
                and base is not None
                and base.ndim == 1
                and base.flags.writeable
                and base.dtype == old.dtype
                and old.ctypes.data == base.ctypes.data
                and _tip_rows(base) == n
                and base.size >= n + delta
            ):
                base[n : n + delta] = addition
                _set_tip(base, n + delta)
                grown = base[: n + delta]
            else:
                capacity = max(2 * n, n + delta, 8)
                new_base = np.empty(capacity, dtype=addition.dtype)
                new_base[:n] = old
                new_base[n : n + delta] = addition
                carry = (
                    base
                    if base is not None and base.dtype == new_base.dtype
                    else None
                )
                register_append_base(
                    new_base,
                    carry_from=carry,
                    carry_bytes=n * new_base.itemsize,
                )
                _set_tip(new_base, n + delta)
                grown = new_base[: n + delta]
            new_columns.append(FrameColumn(column.name, grown))
        return TimeSeriesFrame(new_columns)

    # -- identity --------------------------------------------------------------
    def fingerprint(self) -> tuple:
        """Content fingerprint: per-column digests of the sliced bytes.

        Memoized per frame object (row-sliced views are frame objects of
        their own, so a persistent train split hashes once).  Selecting
        columns composes the per-column digests — it never rehashes, and
        never copies the base the way ``array_digest`` on a
        non-contiguous 2-D column view would.
        """
        if self._fingerprint is None:
            self._fingerprint = (
                "frame",
                len(self),
                tuple(
                    (column.name, column.dtype.str, column.encoding) + column.digest()
                    for column in self._columns
                ),
            )
        return self._fingerprint
