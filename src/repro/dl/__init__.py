"""Numpy deep-learning substrate and DL forecasters.

The paper includes deep-learning pipelines among the model classes managed
by AutoAI-TS.  This package implements a small feed-forward network engine
(dense layers, ReLU/tanh activations, Adam optimiser, mini-batch training)
and the forecasters built on it: a windowed MLP forecaster and an
N-BEATS-style doubly-residual forecaster.
"""

from .forecaster import MLPForecaster, NBeatsLikeForecaster
from .network import FeedForwardNetwork

__all__ = ["FeedForwardNetwork", "MLPForecaster", "NBeatsLikeForecaster"]
