"""Deep-learning forecasters.

Two window-based neural forecasters complete the model classes of figure 1:

* :class:`MLPForecaster` — a direct multi-horizon feed-forward network over
  look-back windows (the generic "DL model" slot of the architecture).
* :class:`NBeatsLikeForecaster` — a doubly-residual stack in the spirit of
  N-BEATS: each block consumes the residual backcast of the previous block
  and emits both a backcast and a forecast; forecasts are summed across
  blocks.  Used both as an AutoAI-TS pipeline candidate and as the core of
  the NBeats SOTA baseline.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon, check_positive_int
from ..core.base import BaseForecaster, check_is_fitted
from ..transforms.window import make_supervised_windows
from .network import FeedForwardNetwork

__all__ = ["MLPForecaster", "NBeatsLikeForecaster"]


def _standardise(values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    mean = values.mean(axis=0)
    scale = values.std(axis=0)
    scale[scale == 0] = 1.0
    return (values - mean) / scale, mean, scale


class MLPForecaster(BaseForecaster):
    """Direct multi-step forecaster backed by a feed-forward network.

    The network maps a flattened look-back window of all series to the next
    ``horizon`` values of all series in one shot (direct strategy, no error
    accumulation across steps).
    """

    def __init__(
        self,
        lookback: int = 12,
        horizon: int = 1,
        hidden_layer_sizes: tuple[int, ...] = (64, 32),
        epochs: int = 150,
        learning_rate: float = 1e-3,
        batch_size: int = 32,
        random_state: int | None = 0,
    ):
        self.lookback = lookback
        self.horizon = horizon
        self.hidden_layer_sizes = hidden_layer_sizes
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.random_state = random_state

    def fit(self, X, y=None) -> "MLPForecaster":
        X = as_2d_array(X)
        lookback = check_positive_int(self.lookback, "lookback")
        horizon = check_horizon(self.horizon)
        # Shrink the window if the series is too short rather than failing.
        max_lookback = max(1, len(X) - horizon - 1)
        lookback = min(lookback, max_lookback)

        features, targets = make_supervised_windows(X, lookback, horizon)
        if targets.ndim == 1:
            targets = targets.reshape(-1, 1)

        features_std, self._feature_mean, self._feature_scale = _standardise(features)
        targets_std, self._target_mean, self._target_scale = _standardise(targets)

        self.network_ = FeedForwardNetwork(
            layer_sizes=(features.shape[1], *tuple(self.hidden_layer_sizes), targets.shape[1]),
            learning_rate=self.learning_rate,
            random_state=self.random_state,
        )
        self.network_.train(
            features_std, targets_std, epochs=int(self.epochs), batch_size=int(self.batch_size)
        )

        self._lookback_used = lookback
        self._n_series = X.shape[1]
        self._last_window = X[-lookback:].copy()
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("network_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)

        window = self._last_window.copy()
        outputs: list[np.ndarray] = []
        produced = 0
        while produced < horizon:
            features = window.reshape(1, -1)
            features_std = (features - self._feature_mean) / self._feature_scale
            prediction_std = self.network_.forward(features_std)
            prediction = prediction_std * self._target_scale + self._target_mean
            block = prediction.reshape(int(self.horizon), self._n_series)
            outputs.append(block)
            produced += block.shape[0]
            # Roll the window forward with the freshly predicted values.
            window = np.vstack([window, block])[-self._lookback_used :]
        return np.vstack(outputs)[:horizon]


class _NBeatsBlock:
    """One block of the doubly-residual stack: backcast + forecast heads."""

    def __init__(
        self,
        lookback: int,
        horizon: int,
        hidden_units: int,
        learning_rate: float,
        epochs: int,
        random_state: int,
    ):
        self.lookback = lookback
        self.horizon = horizon
        self.epochs = epochs
        self.network = FeedForwardNetwork(
            layer_sizes=(lookback, hidden_units, hidden_units, lookback + horizon),
            learning_rate=learning_rate,
            random_state=random_state,
        )

    def fit(self, windows: np.ndarray, targets: np.ndarray) -> None:
        joint_targets = np.hstack([windows, targets])
        self.network.train(windows, joint_targets, epochs=self.epochs, batch_size=64)

    def forward(self, windows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        joint = self.network.forward(windows)
        return joint[:, : self.lookback], joint[:, self.lookback :]


class NBeatsLikeForecaster(BaseForecaster):
    """Doubly-residual basis-expansion forecaster (N-BEATS style).

    Each block is trained to reconstruct the current residual window
    (backcast) and forecast the horizon; the next block receives the
    residual ``window - backcast``.  Forecasts from all blocks are summed.
    Univariate per column: multivariate input is handled one series at a
    time (as the original N-BEATS does).
    """

    def __init__(
        self,
        lookback: int = 24,
        horizon: int = 1,
        n_blocks: int = 3,
        hidden_units: int = 64,
        epochs: int = 100,
        learning_rate: float = 1e-3,
        random_state: int | None = 0,
    ):
        self.lookback = lookback
        self.horizon = horizon
        self.n_blocks = n_blocks
        self.hidden_units = hidden_units
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.random_state = random_state

    def _fit_single_series(self, series: np.ndarray, lookback: int, horizon: int, seed: int):
        features, targets = make_supervised_windows(
            series.reshape(-1, 1), lookback, horizon
        )
        if targets.ndim == 1:
            targets = targets.reshape(-1, 1)

        features_std, feature_mean, feature_scale = _standardise(features)
        targets_std = (targets - feature_mean.mean()) / feature_scale.mean()

        blocks: list[_NBeatsBlock] = []
        residual = features_std.copy()
        for block_index in range(int(self.n_blocks)):
            block = _NBeatsBlock(
                lookback=lookback,
                horizon=horizon,
                hidden_units=int(self.hidden_units),
                learning_rate=self.learning_rate,
                epochs=int(self.epochs),
                random_state=seed + block_index,
            )
            block.fit(residual, targets_std)
            backcast, _ = block.forward(residual)
            residual = residual - backcast
            blocks.append(block)
        return blocks, feature_mean, feature_scale

    def fit(self, X, y=None) -> "NBeatsLikeForecaster":
        X = as_2d_array(X)
        horizon = check_horizon(self.horizon)
        lookback = check_positive_int(self.lookback, "lookback")
        lookback = min(lookback, max(1, len(X) - horizon - 1))

        base_seed = 0 if self.random_state is None else int(self.random_state)
        self._per_series = []
        for column in range(X.shape[1]):
            blocks, feature_mean, feature_scale = self._fit_single_series(
                X[:, column], lookback, horizon, base_seed + 1000 * column
            )
            self._per_series.append((blocks, feature_mean, feature_scale))

        self._lookback_used = lookback
        self._horizon_trained = horizon
        self._n_series = X.shape[1]
        self._last_windows = X[-lookback:].copy()
        self.fitted_ = True
        return self

    def _forecast_one(self, series_index: int, window: np.ndarray) -> np.ndarray:
        blocks, feature_mean, feature_scale = self._per_series[series_index]
        window_std = ((window - feature_mean) / feature_scale).reshape(1, -1)
        forecast_std = np.zeros(self._horizon_trained)
        residual = window_std
        for block in blocks:
            backcast, forecast = block.forward(residual)
            residual = residual - backcast
            forecast_std += forecast.ravel()
        return forecast_std * feature_scale.mean() + feature_mean.mean()

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("fitted_",))
        horizon = check_horizon(horizon if horizon is not None else self._horizon_trained)

        forecasts = np.zeros((horizon, self._n_series))
        for column in range(self._n_series):
            window = self._last_windows[:, column].copy()
            produced = 0
            values: list[float] = []
            while produced < horizon:
                block_forecast = self._forecast_one(column, window)
                values.extend(block_forecast.tolist())
                produced += len(block_forecast)
                window = np.concatenate([window, block_forecast])[-self._lookback_used :]
            forecasts[:, column] = values[:horizon]
        return forecasts
