"""Feed-forward neural network with back-propagation and Adam, in numpy.

This is the deep-learning substrate: both the MLP regressor used by ML
pipelines and the DL forecasters are thin wrappers around
:class:`FeedForwardNetwork`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = ["FeedForwardNetwork"]

_ACTIVATIONS = ("relu", "tanh", "identity")


def _activate(name: str, values: np.ndarray) -> np.ndarray:
    if name == "relu":
        return np.maximum(values, 0.0)
    if name == "tanh":
        return np.tanh(values)
    return values


def _activate_gradient(name: str, pre_activation: np.ndarray) -> np.ndarray:
    if name == "relu":
        return (pre_activation > 0).astype(float)
    if name == "tanh":
        return 1.0 - np.tanh(pre_activation) ** 2
    return np.ones_like(pre_activation)


class FeedForwardNetwork:
    """Dense network trained with mini-batch Adam on squared error.

    Parameters
    ----------
    layer_sizes:
        Sizes of every layer including input and output, e.g. ``(10, 64, 32, 1)``.
    activation:
        Hidden-layer activation: ``"relu"``, ``"tanh"`` or ``"identity"``.
        The output layer is always linear (regression).
    learning_rate, weight_decay:
        Adam step size and L2 penalty.
    """

    def __init__(
        self,
        layer_sizes: tuple[int, ...],
        activation: str = "relu",
        learning_rate: float = 1e-3,
        weight_decay: float = 0.0,
        random_state: int | None = 0,
    ):
        if len(layer_sizes) < 2:
            raise InvalidParameterError("Need at least an input and an output layer.")
        if any(size < 1 for size in layer_sizes):
            raise InvalidParameterError("Every layer must have at least one unit.")
        if activation not in _ACTIVATIONS:
            raise InvalidParameterError(
                f"Unknown activation {activation!r}; expected one of {_ACTIVATIONS}."
            )
        self.layer_sizes = tuple(int(size) for size in layer_sizes)
        self.activation = activation
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.random_state = random_state
        self._initialise_parameters()

    def _initialise_parameters(self) -> None:
        rng = np.random.default_rng(self.random_state)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        # Adam moment estimates.
        self._m_w = [np.zeros_like(w) for w in self.weights]
        self._v_w = [np.zeros_like(w) for w in self.weights]
        self._m_b = [np.zeros_like(b) for b in self.biases]
        self._v_b = [np.zeros_like(b) for b in self.biases]
        self._adam_step = 0

    # -- forward / backward ------------------------------------------------
    def forward(self, X: np.ndarray) -> np.ndarray:
        """Forward pass returning the network output."""
        activations = np.asarray(X, dtype=float)
        last_layer = len(self.weights) - 1
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            pre_activation = activations @ weight + bias
            if index == last_layer:
                activations = pre_activation
            else:
                activations = _activate(self.activation, pre_activation)
        return activations

    def _forward_cached(self, X: np.ndarray) -> tuple[list[np.ndarray], list[np.ndarray]]:
        activations = [np.asarray(X, dtype=float)]
        pre_activations = []
        last_layer = len(self.weights) - 1
        for index, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            pre = activations[-1] @ weight + bias
            pre_activations.append(pre)
            if index == last_layer:
                activations.append(pre)
            else:
                activations.append(_activate(self.activation, pre))
        return activations, pre_activations

    def _backward(
        self,
        activations: list[np.ndarray],
        pre_activations: list[np.ndarray],
        targets: np.ndarray,
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        batch_size = len(targets)
        grads_w = [np.zeros_like(w) for w in self.weights]
        grads_b = [np.zeros_like(b) for b in self.biases]

        # Squared-error loss gradient at the (linear) output layer.
        delta = 2.0 * (activations[-1] - targets) / batch_size
        for layer in range(len(self.weights) - 1, -1, -1):
            grads_w[layer] = activations[layer].T @ delta + self.weight_decay * self.weights[layer]
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights[layer].T) * _activate_gradient(
                    self.activation, pre_activations[layer - 1]
                )
        return grads_w, grads_b

    def _adam_update(self, grads_w: list[np.ndarray], grads_b: list[np.ndarray]) -> None:
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self._adam_step += 1
        step = self._adam_step
        for layer in range(len(self.weights)):
            for params, grads, m, v in (
                (self.weights, grads_w, self._m_w, self._v_w),
                (self.biases, grads_b, self._m_b, self._v_b),
            ):
                m[layer] = beta1 * m[layer] + (1 - beta1) * grads[layer]
                v[layer] = beta2 * v[layer] + (1 - beta2) * grads[layer] ** 2
                m_hat = m[layer] / (1 - beta1**step)
                v_hat = v[layer] / (1 - beta2**step)
                params[layer] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

    # -- training -----------------------------------------------------------
    def train(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 100,
        batch_size: int = 32,
        tol: float = 1e-6,
    ) -> list[float]:
        """Train on ``(X, y)`` and return the per-epoch loss curve."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y.reshape(-1, 1)
        rng = np.random.default_rng(self.random_state)
        n_samples = len(X)
        batch_size = max(1, min(int(batch_size), n_samples))

        loss_curve: list[float] = []
        previous_loss = np.inf
        for _ in range(int(epochs)):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch_size):
                batch = order[start : start + batch_size]
                activations, pre_activations = self._forward_cached(X[batch])
                grads_w, grads_b = self._backward(activations, pre_activations, y[batch])
                self._adam_update(grads_w, grads_b)

            predictions = self.forward(X)
            loss = float(np.mean((predictions - y) ** 2))
            loss_curve.append(loss)
            if abs(previous_loss - loss) < tol:
                break
            previous_loss = loss
        return loss_curve

    @property
    def n_parameters(self) -> int:
        """Total number of trainable parameters."""
        return int(sum(w.size for w in self.weights) + sum(b.size for b in self.biases))
