"""Exception hierarchy for the AutoAI-TS reproduction.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""

    def __init__(self, estimator_name: str = "estimator"):
        super().__init__(
            f"This {estimator_name} instance is not fitted yet. "
            "Call 'fit' before using this method."
        )


class DataQualityError(ReproError, ValueError):
    """Raised when the input data fails the initial quality check."""


class InvalidParameterError(ReproError, ValueError):
    """Raised when an estimator receives an invalid hyper-parameter value."""


class ConvergenceWarning(UserWarning):
    """Warning emitted when an iterative solver stops before convergence."""


class PipelineExecutionError(ReproError, RuntimeError):
    """Raised when a pipeline fails during T-Daub evaluation.

    The orchestrator catches this error, records the failing pipeline and
    continues with the remaining candidates (mirroring the paper's behaviour
    where toolkits that do not finish are excluded from the ranking).
    """

    def __init__(self, pipeline_name: str, stage: str, original: Exception):
        self.pipeline_name = pipeline_name
        self.stage = stage
        self.original = original
        super().__init__(
            f"Pipeline '{pipeline_name}' failed during {stage}: {original!r}"
        )
