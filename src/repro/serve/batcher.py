"""Micro-batching: many concurrent predicts, one model invocation.

Forecast requests against one fitted model are *perfectly* batchable:
``predict(h)`` is a pure function of the fitted state, and a forecast of
``max(h)`` steps contains the forecast of every shorter horizon as a
prefix.  The :class:`MicroBatcher` exploits that shape:

- Requests are queued **per model digest**.  The first request of a batch
  arms a flush timer (``max_delay_ms``); the batch flushes when the timer
  fires or when ``max_batch`` requests have accumulated, whichever is
  first.  An idle model costs nothing; a hot model flushes continuously.
- Each flush runs **one** ``predict(max(horizons))`` on the worker pool
  and answers every request in the batch with a zero-copy slice of the
  shared forecast.  A thousand concurrent requests for a hot model
  become a handful of model invocations — the difference between
  dispatch-bound and compute-bound throughput.
- Queues are **bounded** (``max_queue`` per digest): a request arriving
  at a full queue is shed instantly with :class:`ServeOverloadError`
  (HTTP 429 upstream) instead of growing an unbounded backlog whose
  every entry would time out anyway — fail fast and let the client's
  retry policy decorrelate, the backpressure discipline of
  purple-axiom's operability spec.

Batch state lives on the event loop thread; only the model invocation
itself runs on the executor (predict is read-only after fit — see the
thread-safety contract in :mod:`repro.core.base`), so multiple flushes
of one hot model may overlap on the pool.

Per-model latency/throughput counters are kept in bounded reservoirs and
snapshot via :meth:`MicroBatcher.metrics` — the numbers ``/metrics``
serves.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = ["MicroBatcher", "ServeOverloadError", "BatchedForecast"]


class ServeOverloadError(RuntimeError):
    """The per-model queue is full: shed the request instead of queueing."""


@dataclass(frozen=True)
class BatchedForecast:
    """One request's answer: its forecast slice plus batch provenance."""

    forecast: np.ndarray
    digest: str
    batch_size: int
    queue_seconds: float


#: Latency samples kept per model for the percentile estimates; old
#: samples age out so ``/metrics`` reflects recent behaviour.
_RESERVOIR = 4096


@dataclass
class _ModelMetrics:
    requests: int = 0
    completed: int = 0
    shed: int = 0
    errors: int = 0
    batches: int = 0
    max_batch: int = 0
    latency: deque = field(default_factory=lambda: deque(maxlen=_RESERVOIR))

    def snapshot(self) -> dict:
        samples = sorted(self.latency)
        def pct(q: float) -> float | None:
            if not samples:
                return None
            return round(samples[min(int(q * len(samples)), len(samples) - 1)] * 1000.0, 3)
        mean_batch = self.completed / self.batches if self.batches else 0.0
        return {
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "batches": self.batches,
            "mean_batch": round(mean_batch, 2),
            "max_batch": self.max_batch,
            "p50_ms": pct(0.50),
            "p99_ms": pct(0.99),
        }


class _Lane:
    """Pending requests of one model digest."""

    __slots__ = ("pending", "timer")

    def __init__(self) -> None:
        # (horizon, enqueue time, future)
        self.pending: list[tuple[int, float, asyncio.Future]] = []
        self.timer: asyncio.TimerHandle | None = None


class MicroBatcher:
    """Per-digest request queues flushed by batch window onto an executor.

    Parameters
    ----------
    resolve:
        ``digest -> fitted model`` — typically ``ModelRegistry.get``.
        Called on the executor thread at flush time, so a hot-swap between
        flushes is picked up by the very next batch.
    executor:
        Worker pool running the model invocations.
    max_batch:
        Requests answered by one model invocation at most.
    max_delay_ms:
        Longest a request waits for batch-mates before its flush fires.
    max_queue:
        Bound on queued requests per digest; beyond it requests are shed
        with :class:`ServeOverloadError`.
    """

    def __init__(
        self,
        resolve: Callable[[str], Any],
        executor: Executor,
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
        max_queue: int = 1024,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.resolve = resolve
        self.executor = executor
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay_ms) / 1000.0
        self.max_queue = int(max_queue)
        self._lanes: dict[str, _Lane] = {}
        self._metrics: dict[str, _ModelMetrics] = {}
        self._inflight: set[asyncio.Future] = set()

    # -- submission (event-loop thread only) -----------------------------------
    def _model_metrics(self, digest: str) -> _ModelMetrics:
        metrics = self._metrics.get(digest)
        if metrics is None:
            metrics = self._metrics[digest] = _ModelMetrics()
        return metrics

    def queued(self, digest: str | None = None) -> int:
        """Requests currently queued (for one digest, or in total)."""
        if digest is not None:
            lane = self._lanes.get(digest)
            return len(lane.pending) if lane else 0
        return sum(len(lane.pending) for lane in self._lanes.values())

    async def submit(self, digest: str, horizon: int) -> BatchedForecast:
        """Queue one predict request; resolves with its forecast slice."""
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        loop = asyncio.get_running_loop()
        metrics = self._model_metrics(digest)
        metrics.requests += 1
        lane = self._lanes.get(digest)
        if lane is None:
            lane = self._lanes[digest] = _Lane()
        if len(lane.pending) >= self.max_queue:
            metrics.shed += 1
            raise ServeOverloadError(
                f"model {digest[:12]} queue full ({self.max_queue} pending)"
            )
        future: asyncio.Future = loop.create_future()
        lane.pending.append((int(horizon), time.perf_counter(), future))
        if len(lane.pending) >= self.max_batch:
            self._flush(digest)
        elif lane.timer is None:
            lane.timer = loop.call_later(self.max_delay, self._flush, digest)
        return await future

    # -- flushing --------------------------------------------------------------
    def _flush(self, digest: str) -> None:
        lane = self._lanes.get(digest)
        if lane is None:
            return
        if lane.timer is not None:
            lane.timer.cancel()
            lane.timer = None
        if not lane.pending:
            return
        batch, lane.pending = lane.pending[: self.max_batch], lane.pending[self.max_batch :]
        if lane.pending:
            # Overflow beyond one batch flushes immediately: the window
            # exists to gather batch-mates, and these already have them.
            loop = asyncio.get_running_loop()
            lane.timer = loop.call_later(0.0, self._flush, digest)
        horizons = [entry[0] for entry in batch]
        loop = asyncio.get_running_loop()
        job = loop.run_in_executor(self.executor, self._execute, digest, max(horizons))
        self._inflight.add(job)
        job.add_done_callback(lambda done, b=batch, d=digest: self._complete(d, b, done))

    def _execute(self, digest: str, horizon: int) -> np.ndarray:
        """One vectorized model invocation (executor thread)."""
        model = self.resolve(digest)
        forecast = np.asarray(model.predict(horizon), dtype=float)
        if forecast.ndim == 1:
            forecast = forecast.reshape(-1, 1)
        return forecast

    def _complete(self, digest: str, batch: list, job: asyncio.Future) -> None:
        self._inflight.discard(job)
        metrics = self._model_metrics(digest)
        error = job.exception() if not job.cancelled() else asyncio.CancelledError()
        now = time.perf_counter()
        if error is None:
            forecast = job.result()
            metrics.batches += 1
            metrics.max_batch = max(metrics.max_batch, len(batch))
        for horizon, enqueued, future in batch:
            if future.done():  # client went away mid-flight
                continue
            if error is not None:
                metrics.errors += 1
                future.set_exception(error)
                continue
            metrics.completed += 1
            metrics.latency.append(now - enqueued)
            future.set_result(
                BatchedForecast(
                    forecast=forecast[:horizon],
                    digest=digest,
                    batch_size=len(batch),
                    queue_seconds=now - enqueued,
                )
            )

    async def drain(self) -> None:
        """Flush every lane and wait for in-flight batches (shutdown path)."""
        for digest in list(self._lanes):
            self._flush(digest)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    # -- observability ---------------------------------------------------------
    def metrics(self) -> dict:
        """Per-digest counters plus queue depths (the ``/metrics`` payload)."""
        return {
            digest: {**metrics.snapshot(), "queued": self.queued(digest)}
            for digest, metrics in self._metrics.items()
        }
