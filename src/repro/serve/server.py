"""``ServingReplica``: the asyncio HTTP front end of the serving layer.

One replica is one process serving forecasts for any number of published
models out of one store backend::

    POST /predict/<name>     {"horizon": 12}      -> {"forecast": [[...]], ...}
    GET  /models             name -> digest/version routing table
    GET  /healthz            liveness (the event loop is alive)
    GET  /readyz             readiness (store reachable, models resolved)
    GET  /metrics            per-model latency/throughput counters

Design points:

- **Stateless replicas** — a replica owns no model; it resolves names
  through the CAS-versioned model documents and hydrates snapshots by
  digest (:mod:`~repro.serve.registry`).  Any replica can serve any
  model; scaling out is starting more of them against the same store.
- **Hot swap** — a background watcher polls each served model's document
  every ``poll_interval`` seconds.  When the version moves it hydrates
  the new snapshot first, then atomically repoints the routing table.
  Requests batched under the old digest complete against the old model;
  requests arriving after the swap batch under the new one — nothing is
  dropped, which is exactly what a re-rank publishing a new winner needs.
- **Backpressure, not backlog** — per-model queues are bounded
  (:class:`~repro.serve.batcher.MicroBatcher`); a full queue sheds with
  HTTP 429 and an open hydration circuit fails with HTTP 503, both in
  microseconds.  ``/healthz`` answers as long as the loop runs (liveness
  must not depend on the store); ``/readyz`` turns 503 while the store is
  unreachable so load balancers route around a degraded replica.
- **Trusted network** — like the store and worker servers, this speaks
  plain HTTP with no authentication; bind it to loopback or a private
  interface.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from ..store import CircuitOpenError, StoreBackend, StoreError, open_store
from .batcher import MicroBatcher, ServeOverloadError
from .registry import ModelRegistry
from .snapshot import DEFAULT_DOC_PREFIX, SnapshotNotFoundError, resolve_model

__all__ = ["ServingReplica", "ReplicaHandle"]

#: Request bodies beyond this are refused outright (a predict request is
#: a few dozen bytes of JSON).
_MAX_BODY_BYTES = 1 * 1024 * 1024

_JSON = "application/json"


class ServingReplica:
    """Async serving front end over one store backend.

    Parameters
    ----------
    store:
        Backend (or URL / directory for :func:`~repro.store.open_store`)
        holding snapshots and model documents.
    models:
        Names to resolve and watch from startup.  Names first seen in a
        request path are resolved on demand and watched from then on.
    host, port:
        Listen address; ``port=0`` binds an ephemeral port (``.url``).
    max_batch, max_delay_ms, max_queue:
        Micro-batch window and queue bound per model digest (see
        :class:`~repro.serve.batcher.MicroBatcher`).
    capacity:
        Hydrated models kept resident (LRU beyond it).
    poll_interval:
        Seconds between model-document polls of the hot-swap watcher.
    workers:
        Threads executing model invocations and store I/O (default:
        ``min(8, cpu)``).
    doc_prefix:
        Namespace of the model pointer documents (object store: the
        literal ``models/<name>`` documents; local filesystem: a
        directory path).
    """

    def __init__(
        self,
        store: StoreBackend | str,
        models: Sequence[str] = (),
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
        max_queue: int = 1024,
        capacity: int = 8,
        poll_interval: float = 0.5,
        workers: int | None = None,
        doc_prefix: str = DEFAULT_DOC_PREFIX,
    ):
        backend = open_store(store)
        if backend is None:
            raise ValueError("a serving replica needs a store backend")
        self.backend = backend
        self.initial_models = list(models)
        self.host = host
        self.port = int(port)
        self.poll_interval = float(poll_interval)
        self.doc_prefix = doc_prefix
        if workers is None:
            import os

            workers = min(8, os.cpu_count() or 2)
        self.executor = ThreadPoolExecutor(
            max_workers=int(workers), thread_name_prefix="repro-serve"
        )
        self.registry = ModelRegistry(backend, capacity=capacity)
        self.batcher = MicroBatcher(
            resolve=self.registry.get,
            executor=self.executor,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            max_queue=max_queue,
        )
        #: name -> (digest, version); swapped atomically by the watcher.
        self._table: dict[str, tuple[str, int]] = {}
        self._server: asyncio.AbstractServer | None = None
        self._watcher: asyncio.Task | None = None
        self._started_at = time.monotonic()
        self._swaps = 0
        self._watch_errors = 0
        self._store_ready = True
        self.address: tuple[str, int] | None = None

    # -- lifecycle -------------------------------------------------------------
    @property
    def url(self) -> str:
        if self.address is None:
            raise RuntimeError("replica is not started")
        host, port = self.address
        return f"http://{host}:{port}"

    async def start(self) -> None:
        """Bind the listener, resolve initial models, start the watcher."""
        loop = asyncio.get_running_loop()
        for name in self.initial_models:
            entry = await loop.run_in_executor(self.executor, self._resolve, name)
            if entry is None:
                warnings.warn(
                    f"model {name!r} has no published snapshot in "
                    f"{self.backend.describe()} yet; serving it once published",
                    stacklevel=2,
                )
            else:
                self._table[name] = entry
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._started_at = time.monotonic()
        self._watcher = asyncio.ensure_future(self._watch_models())

    async def stop(self) -> None:
        """Stop accepting, drain in-flight batches, release resources."""
        if self._watcher is not None:
            self._watcher.cancel()
            try:
                await self._watcher
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._watcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.drain()
        self.executor.shutdown(wait=True, cancel_futures=True)
        self.backend.close()

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def start_in_background(self) -> "ReplicaHandle":
        """Run this replica on a dedicated event-loop thread (tests, CLI)."""
        return ReplicaHandle(self)

    # -- model routing ---------------------------------------------------------
    def _resolve(self, name: str) -> tuple[str, int] | None:
        return resolve_model(self.backend, name, self.doc_prefix)

    async def _watch_models(self) -> None:
        """Poll model documents; hydrate then swap on version changes."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.poll_interval)
            for name in list(self._table):
                current = self._table.get(name)
                try:
                    entry = await loop.run_in_executor(self.executor, self._resolve, name)
                    self._store_ready = True
                except (StoreError, OSError):
                    # Keep serving the hydrated model through a store
                    # outage; readiness reports the degradation.
                    self._store_ready = False
                    self._watch_errors += 1
                    continue
                if entry is None or current is None or entry == current:
                    continue
                digest, version = entry
                if digest != current[0]:
                    try:
                        # Hydrate *before* swapping: the table never points
                        # at a model that could fail mid-request storm.
                        await loop.run_in_executor(
                            self.executor, self.registry.get, digest
                        )
                    except Exception:  # noqa: BLE001 - keep old model on any failure
                        self._watch_errors += 1
                        continue
                self._table[name] = entry
                self._swaps += 1

    # -- HTTP plumbing ---------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or not request_line.strip():
                    break
                try:
                    method, target, _version = request_line.decode("latin-1").split()
                except ValueError:
                    await self._reply(writer, 400, {"error": "malformed request line"})
                    break
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if not line or line in (b"\r\n", b"\n"):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0"))
                except ValueError:
                    await self._reply(writer, 400, {"error": "bad Content-Length"})
                    break
                if length > _MAX_BODY_BYTES:
                    await self._reply(writer, 413, {"error": "body too large"})
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._route(method, target, body)
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                await self._reply(writer, status, payload, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _reply(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool = True,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
                  413: "Payload Too Large", 429: "Too Many Requests",
                  500: "Internal Server Error", 503: "Service Unavailable"}.get(status, "")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {_JSON}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routes ----------------------------------------------------------------
    async def _route(self, method: str, target: str, body: bytes) -> tuple[int, dict]:
        path = target.split("?", 1)[0]
        if path.startswith("/predict/"):
            if method != "POST":
                return 405, {"error": "predict is POST"}
            return await self._predict(path[len("/predict/") :], body)
        if method not in ("GET", "HEAD"):
            return 405, {"error": f"{method} not supported on {path}"}
        if path == "/healthz":
            return 200, {
                "status": "ok",
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "models": len(self._table),
            }
        if path == "/readyz":
            return await self._readyz()
        if path == "/metrics":
            return 200, self._metrics()
        if path == "/models":
            return 200, {
                name: {"digest": digest, "version": version}
                for name, (digest, version) in sorted(self._table.items())
            }
        return 404, {"error": f"unknown route {path}"}

    async def _readyz(self) -> tuple[int, dict]:
        ready = self._store_ready
        healthy = getattr(self.backend, "healthy", None)
        if ready and healthy is not None:
            loop = asyncio.get_running_loop()
            try:
                ready = await loop.run_in_executor(self.executor, healthy)
            except (StoreError, OSError):
                ready = False
        self._store_ready = bool(ready)
        payload = {
            "status": "ready" if ready else "degraded",
            "store": self.backend.describe(),
            "models": len(self._table),
            "queued": self.batcher.queued(),
        }
        return (200 if ready else 503), payload

    def _metrics(self) -> dict:
        by_digest = self.batcher.metrics()
        models = {}
        for name, (digest, version) in self._table.items():
            models[name] = {
                "digest": digest,
                "version": version,
                **by_digest.get(digest, {}),
            }
        registry = self.registry.stats()
        return {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "models": models,
            "digests": by_digest,
            "registry": {
                "hits": registry.hits,
                "loads": registry.loads,
                "load_failures": registry.load_failures,
                "single_flight_waits": registry.single_flight_waits,
                "evictions": registry.evictions,
                "cached": registry.cached,
                "breaker_state": registry.breaker_state,
            },
            "swaps": self._swaps,
            "watch_errors": self._watch_errors,
        }

    async def _predict(self, name: str, body: bytes) -> tuple[int, dict]:
        try:
            request = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(request, dict):
                raise ValueError("body must be a JSON object")
            horizon = int(request.get("horizon", 1))
            if horizon < 1:
                raise ValueError("horizon must be >= 1")
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": f"bad predict request: {exc}"}
        entry = self._table.get(name)
        if entry is None:
            loop = asyncio.get_running_loop()
            try:
                entry = await loop.run_in_executor(
                    self.executor, self._resolve, name
                )
            except (StoreError, OSError) as exc:
                return 503, {"error": f"store unavailable resolving {name!r}: {exc}"}
            if entry is None:
                return 404, {"error": f"no published model {name!r}"}
            # First sighting: route it and let the watcher track it.
            self._table[name] = entry
        digest, version = entry
        try:
            result = await self.batcher.submit(digest, horizon)
        except ServeOverloadError as exc:
            return 429, {"error": str(exc), "model": name}
        except SnapshotNotFoundError as exc:
            return 404, {"error": str(exc), "model": name}
        except CircuitOpenError as exc:
            return 503, {"error": f"hydration circuit open: {exc}", "model": name}
        except (StoreError, OSError) as exc:
            return 503, {"error": f"store unavailable: {exc}", "model": name}
        except Exception as exc:  # noqa: BLE001 - a model bug must not kill the loop
            return 500, {"error": f"{type(exc).__name__}: {exc}", "model": name}
        return 200, {
            "model": name,
            "digest": result.digest,
            "version": version,
            "horizon": horizon,
            "forecast": result.forecast.tolist(),
            "batch_size": result.batch_size,
            "queue_ms": round(result.queue_seconds * 1000.0, 3),
        }

    def __repr__(self) -> str:
        bound = self.url if self.address else "unbound"
        return f"ServingReplica({bound}, store={self.backend.describe()!r})"


class ReplicaHandle:
    """A replica running on its own event-loop thread.

    Gives synchronous callers (tests, benchmarks, the CLI) a started
    replica with a ``.url`` and a blocking :meth:`stop`.
    """

    def __init__(self, replica: ServingReplica):
        self.replica = replica
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: list[BaseException] = []

        def runner() -> None:
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(replica.start())
            except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
                failure.append(exc)
                started.set()
                return
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=runner, daemon=True, name="repro-serve-loop")
        self._thread.start()
        started.wait()
        if failure:
            raise failure[0]

    @property
    def url(self) -> str:
        return self.replica.url

    def stop(self, timeout: float = 10.0) -> None:
        if not self._loop.is_running():
            return
        stop = asyncio.run_coroutine_threadsafe(self.replica.stop(), self._loop)
        try:
            stop.result(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)
            if not self._thread.is_alive():
                self._loop.close()

    def __enter__(self) -> "ReplicaHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
