"""Content-addressed model snapshots: fitted pipelines as store objects.

A snapshot is two kinds of store object, reusing the families every
backend already implements:

- **Payload chunks** — the pickled fitted model split into fixed-size
  chunks published as content-addressed ``uint8`` blobs
  (``put_blob``/``get_blob``), so a model shared by two snapshots (or two
  replicas hydrating the same model) transfers and stores each byte run
  exactly once.  Blob reads are digest-verified by the backends.
- **Manifest record** — a small JSON record (``put``/``get``) naming the
  chunk digests, sizes and a digest of the whole payload.  The **snapshot
  digest** is the digest of the canonical manifest text, so identical
  fitted bytes always produce the identical snapshot digest on any host.

Model *names* are one mutable document per model
(``models/<name>``, see :func:`model_doc_name`): a tiny CAS-versioned
JSON pointer ``{"digest": ..., "version": N}`` updated through the
backend's :meth:`~repro.store.StoreBackend.update_doc` lease primitive.
Publishing a re-ranked winner is one conditional update; serving replicas
watch the document and hot-swap when ``version`` moves.  Two racing
publishers are serialized by the store's CAS — versions never collide and
the loser's update lands on top of the winner's.

Pickle is the serialization format on purpose: snapshots are produced and
consumed by the same trusted codebase that already ships pickled tasks
between its own workers (``repro.exec.remote``).  Never hydrate a
snapshot from an untrusted store.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..store import StoreBackend, array_digest, text_digest

__all__ = [
    "ModelSnapshot",
    "PublishedModel",
    "SnapshotNotFoundError",
    "SnapshotIntegrityError",
    "snapshot_model",
    "hydrate_model",
    "publish_model",
    "resolve_model",
    "model_doc_name",
]

#: Version stamp of the manifest layout; hydration refuses other versions
#: loudly instead of misinterpreting them.
SNAPSHOT_SCHEMA = 1

#: Default payload chunk size.  Small models fit one chunk; a chunked
#: layout keeps any single blob transfer bounded and lets two snapshots
#: that share a prefix (e.g. re-publishing an unchanged model) dedup
#: chunk-for-chunk through ``has_blob``.
DEFAULT_CHUNK_BYTES = 8 * 1024 * 1024

#: Default document namespace for published model pointers.
DEFAULT_DOC_PREFIX = "models"


class SnapshotNotFoundError(KeyError):
    """No snapshot manifest (or payload chunk) exists for the digest."""


class SnapshotIntegrityError(ValueError):
    """A hydrated payload does not hash back to its manifest digests."""


@dataclass(frozen=True)
class ModelSnapshot:
    """Address and manifest of one published snapshot."""

    digest: str
    manifest: dict

    @property
    def payload_bytes(self) -> int:
        return int(self.manifest["payload_bytes"])

    @property
    def model_class(self) -> str:
        return str(self.manifest["model_class"])


@dataclass(frozen=True)
class PublishedModel:
    """Result of pointing a model document at a snapshot."""

    name: str
    digest: str
    version: int
    snapshot: ModelSnapshot


def _canonical_manifest_text(manifest: dict) -> str:
    return json.dumps(manifest, sort_keys=True, separators=(",", ":"))


def snapshot_model(
    model: Any,
    backend: StoreBackend,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> ModelSnapshot:
    """Serialize a fitted model into content-addressed store objects.

    Returns the snapshot whose ``digest`` any replica can hydrate via
    :func:`hydrate_model`.  Chunks the backend already holds are not
    re-uploaded (``has_blob`` dedup), so re-snapshotting an unchanged
    model costs one manifest write.
    """
    if chunk_bytes < 1:
        raise ValueError("chunk_bytes must be >= 1")
    payload = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
    chunks: list[dict] = []
    for start in range(0, len(payload), int(chunk_bytes)) or [0]:
        chunk = np.frombuffer(payload[start : start + int(chunk_bytes)], dtype=np.uint8)
        digest = array_digest(chunk)
        if not backend.has_blob(digest) and not backend.put_blob(digest, chunk):
            raise OSError(f"store refused snapshot chunk {digest} ({backend.describe()})")
        chunks.append({"digest": digest, "bytes": int(chunk.nbytes)})
    manifest = {
        "kind": "model-snapshot",
        "schema": SNAPSHOT_SCHEMA,
        "format": "pickle",
        "model_class": type(model).__qualname__,
        "payload_bytes": len(payload),
        "payload_digest": text_digest(payload),
        "chunks": chunks,
    }
    snapshot_digest = text_digest(_canonical_manifest_text(manifest))
    if not backend.put(snapshot_digest, manifest):
        raise OSError(f"store refused snapshot manifest ({backend.describe()})")
    return ModelSnapshot(digest=snapshot_digest, manifest=manifest)


def hydrate_model(backend: StoreBackend, digest: str) -> Any:
    """Load and unpickle the snapshot published under ``digest``.

    Raises :class:`SnapshotNotFoundError` when the manifest or any chunk
    is missing, and :class:`SnapshotIntegrityError` when the reassembled
    payload does not hash back to the manifest — a truncated or tampered
    snapshot must never unpickle into a half-wrong model.
    """
    manifest = backend.get(digest)
    if not isinstance(manifest, dict) or manifest.get("kind") != "model-snapshot":
        raise SnapshotNotFoundError(f"no model snapshot {digest!r} in {backend.describe()}")
    if manifest.get("schema") != SNAPSHOT_SCHEMA:
        raise SnapshotIntegrityError(
            f"snapshot {digest} has schema {manifest.get('schema')!r}, "
            f"this library reads schema {SNAPSHOT_SCHEMA}"
        )
    parts: list[bytes] = []
    for chunk in manifest["chunks"]:
        array = backend.get_blob(chunk["digest"])
        if array is None:
            raise SnapshotNotFoundError(
                f"snapshot {digest} chunk {chunk['digest']} missing from {backend.describe()}"
            )
        parts.append(np.ascontiguousarray(array, dtype=np.uint8).tobytes())
    payload = b"".join(parts)
    if len(payload) != int(manifest["payload_bytes"]) or (
        text_digest(payload) != manifest["payload_digest"]
    ):
        raise SnapshotIntegrityError(
            f"snapshot {digest} payload does not hash back to its manifest "
            f"({len(payload)} bytes hydrated, {manifest['payload_bytes']} expected)"
        )
    return pickle.loads(payload)


def model_doc_name(name: str, doc_prefix: str = DEFAULT_DOC_PREFIX) -> str:
    """Document name of one published model pointer.

    On the object store this is the literal document name (quoted into
    ``/docs/models%2F<name>``); on the local filesystem it is a path, so
    callers serving from a directory pass an absolute ``doc_prefix``.
    """
    if not name or any(sep in name for sep in ("/", "\\", "\0")):
        raise ValueError(f"model names must be non-empty path segments, got {name!r}")
    return f"{doc_prefix}/{name}"


def publish_model(
    model: Any,
    backend: StoreBackend,
    name: str,
    doc_prefix: str = DEFAULT_DOC_PREFIX,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> PublishedModel:
    """Snapshot ``model`` and point the named model document at it.

    The document update is a CAS transaction: the version increments over
    whatever is currently published, so two racing publishers serialize
    and watchers see every transition.  Re-publishing the digest already
    current keeps the version unchanged (idempotent deploys).
    """
    snapshot = snapshot_model(model, backend, chunk_bytes=chunk_bytes)
    doc = model_doc_name(name, doc_prefix)
    result: dict = {}

    def transition(current: str | None) -> str:
        version = 1
        if current:
            try:
                previous = json.loads(current)
                if previous.get("digest") == snapshot.digest:
                    result.update(previous)
                    return current
                version = int(previous.get("version", 0)) + 1
            except (ValueError, TypeError):
                version = 1  # unreadable pointer: start a fresh lineage
        result.clear()
        result.update(
            {
                "schema": SNAPSHOT_SCHEMA,
                "name": name,
                "digest": snapshot.digest,
                "version": version,
                "model_class": snapshot.model_class,
                "payload_bytes": snapshot.payload_bytes,
            }
        )
        return json.dumps(result, sort_keys=True)

    backend.update_doc(doc, transition)
    return PublishedModel(
        name=name,
        digest=str(result["digest"]),
        version=int(result["version"]),
        snapshot=snapshot,
    )


def resolve_model(
    backend: StoreBackend,
    name: str,
    doc_prefix: str = DEFAULT_DOC_PREFIX,
) -> tuple[str, int] | None:
    """Current ``(digest, version)`` of a published model, or ``None``.

    Unreadable pointer documents resolve to ``None`` rather than raising:
    to a serving replica a torn pointer and a missing one both mean "keep
    serving what you have".
    """
    text = backend.read_doc(model_doc_name(name, doc_prefix))
    if not text:
        return None
    try:
        doc = json.loads(text)
        return str(doc["digest"]), int(doc["version"])
    except (ValueError, TypeError, KeyError):
        return None
