"""``python -m repro.serve`` — run one serving replica until killed.

Example::

    python -m repro.store.server --port 7171 --root store-root &
    python -m repro.serve --store http://127.0.0.1:7171 \
        --models energy,retail --port 7272 --max-batch 64 --max-delay-ms 3

Any number of replicas can point at one store; each resolves, hydrates
and hot-swaps its models independently.
"""

from __future__ import annotations

import asyncio
import os
from typing import Sequence

from .server import ServingReplica

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve micro-batched forecasts from published model snapshots.",
    )
    parser.add_argument(
        "--store",
        required=True,
        help="object-store URL (http://host:port) or local store directory",
    )
    parser.add_argument(
        "--models",
        default="",
        help="comma-separated model names to resolve at startup (others are "
        "resolved on first request)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument("--port", type=int, default=7272, help="listen port (0 = any)")
    parser.add_argument("--max-batch", type=int, default=32, help="requests per flush")
    parser.add_argument(
        "--max-delay-ms", type=float, default=2.0, help="batch window in milliseconds"
    )
    parser.add_argument(
        "--max-queue", type=int, default=1024, help="queued requests per model before 429"
    )
    parser.add_argument(
        "--capacity", type=int, default=8, help="hydrated models kept resident (LRU)"
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.5, help="hot-swap poll seconds"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="model-invocation threads"
    )
    parser.add_argument(
        "--doc-prefix",
        default="models",
        help="model-document namespace (object store) or directory (local store)",
    )
    args = parser.parse_args(argv)

    replica = ServingReplica(
        store=args.store,
        models=[name for name in args.models.split(",") if name],
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        max_queue=args.max_queue,
        capacity=args.capacity,
        poll_interval=args.poll_interval,
        workers=args.workers,
        doc_prefix=args.doc_prefix,
    )

    async def run() -> None:
        await replica.start()
        host, port = replica.address
        print(
            f"[serve] replica on http://{host}:{port} "
            f"(store {replica.backend.describe()}, "
            f"models {sorted(replica._table) or 'on-demand'}, pid {os.getpid()})",
            flush=True,
        )
        assert replica._server is not None
        try:
            await replica._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await replica.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
