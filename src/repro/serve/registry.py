"""Hydration registry: LRU model cache with single-flight store loads.

A serving replica fields many concurrent requests for few distinct
models, so the registry's job is to make hydration **amortized free**:

- **LRU cache** — hydrated models are kept per digest up to ``capacity``;
  the least recently used snapshot is dropped when an eviction is needed
  (its forecast state is just a store read away).
- **Single-flight dedup** — when a cold digest is requested by many
  callers at once, exactly one performs the store load; the rest block on
  the same in-flight result instead of multiplying the store traffic by
  the request concurrency.  A failed load fails every waiter of that
  flight, but the *next* request starts a fresh flight — a transient
  store blip is not sticky.
- **Healing** — loads run under a shared
  :class:`~repro.resilience.RetryPolicy` and a
  :class:`~repro.resilience.CircuitBreaker`: transient store failures are
  retried with jittered backoff; consecutive exhausted loads trip the
  breaker so an unreachable store fails requests in microseconds
  (:class:`~repro.store.CircuitOpenError` → HTTP 503 upstream) instead of
  each paying the full retry budget.  A genuinely missing snapshot
  (:class:`~repro.serve.snapshot.SnapshotNotFoundError`) is *not* a store
  failure: it is never retried and never trips the breaker.

The registry is thread-safe and synchronous; the asyncio front end calls
it through its executor threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from ..resilience import CircuitBreaker, RetryPolicy
from ..store import CircuitOpenError, StoreBackend, StoreError
from .snapshot import SnapshotNotFoundError, hydrate_model

__all__ = ["ModelRegistry", "RegistryStats"]


@dataclass(frozen=True)
class RegistryStats:
    """Counter snapshot of one registry (wire-stats style)."""

    hits: int
    loads: int
    load_failures: int
    single_flight_waits: int
    evictions: int
    cached: int
    breaker_state: str


class _Flight:
    """One in-flight hydration shared by every concurrent requester."""

    __slots__ = ("done", "model", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.model: Any = None
        self.error: BaseException | None = None


class ModelRegistry:
    """Digest-addressed cache of hydrated models over one store backend.

    Parameters
    ----------
    backend:
        Store holding the snapshots (any :class:`~repro.store.StoreBackend`).
    capacity:
        Hydrated models kept resident; the least recently used is evicted
        beyond that.
    retry_policy:
        Retry budget of one hydration against transient store failures.
    breaker_failures / breaker_reset_after:
        Consecutive exhausted hydrations that trip the circuit open, and
        the cooldown before a half-open probe.
    """

    def __init__(
        self,
        backend: StoreBackend,
        capacity: int = 8,
        retry_policy: RetryPolicy | None = None,
        breaker_failures: int = 5,
        breaker_reset_after: float = 15.0,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.backend = backend
        self.capacity = int(capacity)
        self.retry_policy = retry_policy or RetryPolicy(attempts=3, base_backoff=0.05)
        self._breaker = CircuitBreaker(
            failure_threshold=breaker_failures, reset_after=breaker_reset_after
        )
        self._lock = threading.Lock()
        self._models: OrderedDict[str, Any] = OrderedDict()
        self._flights: dict[str, _Flight] = {}
        self._hits = 0
        self._loads = 0
        self._load_failures = 0
        self._waits = 0
        self._evictions = 0

    # -- lookup ----------------------------------------------------------------
    def get(self, digest: str) -> Any:
        """Return the hydrated model for ``digest`` (loading it if cold).

        Raises :class:`~repro.serve.snapshot.SnapshotNotFoundError` for
        unknown digests, :class:`~repro.store.CircuitOpenError` while the
        hydration circuit is open, and :class:`~repro.store.StoreError`
        when a load exhausts its retry budget.
        """
        with self._lock:
            model = self._models.get(digest)
            if model is not None:
                self._models.move_to_end(digest)
                self._hits += 1
                return model
            flight = self._flights.get(digest)
            if flight is None:
                flight = _Flight()
                self._flights[digest] = flight
                leader = True
            else:
                leader = False
                self._waits += 1
        if leader:
            return self._lead_flight(digest, flight)
        flight.done.wait()
        if flight.error is not None:
            raise flight.error
        return flight.model

    def peek(self, digest: str) -> Any | None:
        """Cached model or ``None`` — never touches the store."""
        with self._lock:
            return self._models.get(digest)

    # -- loading ---------------------------------------------------------------
    def _lead_flight(self, digest: str, flight: _Flight) -> Any:
        try:
            model = self._load(digest)
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._flights.pop(digest, None)
                self._load_failures += 1
            flight.done.set()
            raise
        flight.model = model
        with self._lock:
            self._flights.pop(digest, None)
            self._models[digest] = model
            self._models.move_to_end(digest)
            self._loads += 1
            while len(self._models) > self.capacity:
                self._models.popitem(last=False)
                self._evictions += 1
        flight.done.set()
        return model

    def _load(self, digest: str) -> Any:
        if not self._breaker.allow():
            raise CircuitOpenError(
                f"model hydration circuit open ({self.backend.describe()})"
            )
        policy = self.retry_policy
        last_error: Exception | None = None
        for attempt in range(policy.attempts):
            if attempt:
                policy.sleep(attempt - 1)
            try:
                model = hydrate_model(self.backend, digest)
            except SnapshotNotFoundError:
                # Backends degrade store outages to misses; distinguish "the
                # store is down" (a breaker-worthy transport failure) from
                # "this snapshot genuinely does not exist" (a caller error
                # that must not poison the circuit for everyone else).
                healthy = getattr(self.backend, "healthy", None)
                if healthy is not None and not healthy():
                    last_error = StoreError(
                        f"store unreachable while hydrating {digest} "
                        f"({self.backend.describe()})"
                    )
                    continue
                self._breaker.record_success()
                raise
            except CircuitOpenError:
                # The backend's own transport breaker is open: same
                # degraded state as ours, don't double-count it.
                raise
            except (StoreError, OSError) as exc:
                last_error = exc
                continue
            self._breaker.record_success()
            return model
        self._breaker.record_failure()
        raise StoreError(
            f"hydrating snapshot {digest} failed after {policy.attempts} "
            f"attempts: {last_error}"
        )

    # -- maintenance -----------------------------------------------------------
    def evict(self, digest: str) -> None:
        with self._lock:
            if self._models.pop(digest, None) is not None:
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._models.clear()

    def stats(self) -> RegistryStats:
        with self._lock:
            return RegistryStats(
                hits=self._hits,
                loads=self._loads,
                load_failures=self._load_failures,
                single_flight_waits=self._waits,
                evictions=self._evictions,
                cached=len(self._models),
                breaker_state=self._breaker.state,
            )

    def __repr__(self) -> str:
        return (
            f"ModelRegistry(backend={self.backend.describe()!r}, "
            f"capacity={self.capacity}, cached={len(self._models)})"
        )
