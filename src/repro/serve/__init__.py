"""Online serving: fitted models as store objects behind an async front end.

The training side of this system can rank ten thousand pipelines across a
fleet; this package is the request path that serves their forecasts.  Its
organizing idea is that **a fitted model is just another store object**:

:mod:`repro.serve.snapshot`
    ``snapshot_model`` serializes a fitted pipeline into content-addressed
    blobs plus a manifest record in any :class:`~repro.store.StoreBackend`,
    and ``publish_model`` points a CAS-versioned model document
    (``docs: models/<name>``) at the snapshot digest.  Any replica can
    hydrate any model by digest; re-publishing a re-ranked winner is one
    conditional document update.

:mod:`repro.serve.registry`
    ``ModelRegistry`` hydrates snapshots with an LRU cache and
    **single-flight dedup** — a thousand concurrent requests for a cold
    model trigger exactly one store load — guarded by the shared
    :class:`~repro.resilience.RetryPolicy` / :class:`~repro.resilience.
    CircuitBreaker` pair on the hydration path.

:mod:`repro.serve.batcher`
    ``MicroBatcher`` queues predict requests per model digest and flushes
    them by batch window (``max_batch`` / ``max_delay_ms``), executing
    **one** vectorized ``predict`` per flush on a thread pool and slicing
    each request's horizon out of the shared forecast — the core
    throughput optimisation.  Queues are bounded; excess load is shed
    fast (HTTP 429) instead of growing without bound.

:mod:`repro.serve.server`
    ``ServingReplica`` is the asyncio HTTP front end: request routing,
    ``/healthz`` / ``/readyz`` probes, per-model latency and throughput
    counters (``/metrics``), and a background watcher that polls model
    documents and hot-swaps hydrated models between flushes — a re-rank
    publishing a new winner never drops an in-flight request.

``python -m repro.serve`` starts a replica from the command line.
"""

from __future__ import annotations

from .batcher import MicroBatcher, ServeOverloadError
from .registry import ModelRegistry
from .server import ServingReplica
from .snapshot import (
    ModelSnapshot,
    PublishedModel,
    SnapshotIntegrityError,
    SnapshotNotFoundError,
    hydrate_model,
    model_doc_name,
    publish_model,
    resolve_model,
    snapshot_model,
)

__all__ = [
    "snapshot_model",
    "hydrate_model",
    "publish_model",
    "resolve_model",
    "model_doc_name",
    "ModelSnapshot",
    "PublishedModel",
    "SnapshotNotFoundError",
    "SnapshotIntegrityError",
    "ModelRegistry",
    "MicroBatcher",
    "ServeOverloadError",
    "ServingReplica",
]
