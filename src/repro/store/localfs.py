"""Local-filesystem backend: today's on-disk layout behind the new seam.

:class:`LocalFSBackend` is a thin adapter over
:class:`repro.exec.store.DiskStore` — same directory layout, same record
bytes, same atomic write-then-rename — so pointing it at an existing
``cache_dir`` or ``blob_dir`` reuses every record and blob already there
(zero migration; a warm store stays warm).

Documents are addressed by *filesystem path* (the historical contract of
run manifests: ``--manifest runs/tiny.json`` is a path, absolute or
CWD-relative).  :meth:`update_doc` supplies the lease the shared-manifest
protocol needs via a :class:`~repro.exec.store.FileLock` on a ``.lock``
sidecar next to the document — ``flock`` conflicts between processes and
threads alike and is released by the kernel when a holder dies, so a
crashed worker never wedges the fleet.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Callable

from .base import StoreBackend

__all__ = ["LocalFSBackend"]


class LocalFSBackend(StoreBackend):
    """Records and blobs under one directory, documents by path.

    Parameters
    ----------
    root:
        Directory of the record/blob store (a ``DiskStore`` layout),
        created on first write.  ``None`` builds a documents-only backend
        (e.g. for a runner that manages manifests but has no evaluation
        store) — record and blob operations then report misses and refuse
        writes.
    schema_version:
        Forwarded to the underlying :class:`~repro.exec.store.DiskStore`;
        overridable for tests.
    lock_timeout:
        Seconds :meth:`update_doc` waits for a document's lock before
        failing loudly.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        schema_version: int | None = None,
        lock_timeout: float = 60.0,
    ):
        from ..exec.store import SCHEMA_VERSION, DiskStore

        self.root = None if root is None else Path(root)
        self.schema_version = SCHEMA_VERSION if schema_version is None else int(schema_version)
        self.lock_timeout = float(lock_timeout)
        self.disk = None if self.root is None else DiskStore(self.root, self.schema_version)

    # -- records ---------------------------------------------------------------
    def get(self, digest: str) -> Any | None:
        return None if self.disk is None else self.disk.get(digest)

    def put(self, digest: str, value: Any) -> bool:
        return False if self.disk is None else self.disk.put(digest, value)

    def evict(self, digest: str) -> None:
        if self.disk is not None:
            self.disk.evict(digest)

    # -- blobs -----------------------------------------------------------------
    def put_blob(self, digest: str, array) -> bool:
        return False if self.disk is None else self.disk.put_blob(digest, array)

    def get_blob(self, digest: str):
        return None if self.disk is None else self.disk.get_blob(digest)

    def has_blob(self, digest: str) -> bool:
        return False if self.disk is None else self.disk.has_blob(digest)

    # -- documents -------------------------------------------------------------
    def _doc_path(self, name: str) -> Path:
        # Documents keep their historical path semantics on purpose:
        # manifests written before this backend existed stay readable at
        # the very names their runs recorded.
        return Path(name)

    def read_doc(self, name: str) -> str | None:
        try:
            return self._doc_path(name).read_text(encoding="utf-8")
        except FileNotFoundError:
            return None

    def write_doc(self, name: str, text: str) -> None:
        from ..exec.store import atomic_write_text

        atomic_write_text(self._doc_path(name), text)

    def update_doc(self, name: str, fn: Callable[[str | None], str]) -> str:
        from ..exec.store import FileLock, atomic_write_text

        path = self._doc_path(name)
        lock = FileLock(path.with_name(path.name + ".lock"), timeout=self.lock_timeout)
        with lock:
            try:
                current = path.read_text(encoding="utf-8")
            except FileNotFoundError:
                current = None
            text = fn(current)
            atomic_write_text(path, text)
        return text

    # -- lifecycle -------------------------------------------------------------
    def __len__(self) -> int:
        return 0 if self.disk is None else len(self.disk)

    def describe(self) -> str:
        return "local documents" if self.root is None else str(self.root)

    def __repr__(self) -> str:
        root = None if self.root is None else str(self.root)
        return f"LocalFSBackend(root={root!r})"
