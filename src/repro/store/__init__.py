"""Pluggable storage backends behind every persistence path.

One interface — :class:`StoreBackend` — behind the evaluation cache's
persistent tier, the data plane's blob spill/sync and the shared run
manifests, with two implementations:

- :class:`LocalFSBackend` — today's on-disk layout (a
  :class:`~repro.exec.store.DiskStore` directory plus ``flock``-guarded
  documents), byte-for-byte compatible with stores written before this
  package existed.
- :class:`ObjectStoreBackend` — an S3-style HTTP client for the bundled
  ``python -m repro.store.server``, so shards with **no shared
  filesystem** (cloud workers, separate hosts) still share one store.
  Documents get lock-free compare-and-swap via ETag-conditional PUT.

:func:`open_store` maps user-facing configuration (a URL or a directory
path) to the right backend; :mod:`repro.store.digest` is the single home
of the BLAKE2 content digests every consumer shares.
"""

from __future__ import annotations

import os

from .base import CircuitOpenError, StoreBackend, StoreError
from .digest import (
    append_base_stats,
    array_digest,
    clear_digest_memo,
    digest_memo_stats,
    key_digest,
    register_append_base,
    text_digest,
)
from .localfs import LocalFSBackend
from .objectstore import ObjectStoreBackend, StoreTransportStats

__all__ = [
    "StoreBackend",
    "StoreError",
    "CircuitOpenError",
    "LocalFSBackend",
    "ObjectStoreBackend",
    "StoreTransportStats",
    "open_store",
    "as_record_backend",
    "array_digest",
    "key_digest",
    "text_digest",
    "clear_digest_memo",
    "digest_memo_stats",
    "register_append_base",
    "append_base_stats",
]


def open_store(target: "str | os.PathLike | StoreBackend | None") -> StoreBackend | None:
    """Resolve user-facing storage configuration to a backend.

    ``http(s)://`` URLs open an :class:`ObjectStoreBackend`; anything
    else is a filesystem path for a :class:`LocalFSBackend`; a ready
    backend instance passes through; ``None`` stays ``None``.
    """
    if target is None or isinstance(target, StoreBackend):
        return target
    text = os.fspath(target)
    if text.startswith(("http://", "https://")):
        return ObjectStoreBackend(text)
    return LocalFSBackend(text)


def as_record_backend(store) -> StoreBackend:
    """Adapt legacy store objects (a raw ``DiskStore``) to the interface.

    The evaluation cache historically accepted a
    :class:`~repro.exec.store.DiskStore`; wrapping keeps that calling
    convention alive while every internal consumer talks to one seam.
    """
    if isinstance(store, StoreBackend):
        return store
    if isinstance(store, (str, os.PathLike)):
        resolved = open_store(store)
        assert resolved is not None
        return resolved
    from ..exec.store import DiskStore

    if isinstance(store, DiskStore):
        wrapped = LocalFSBackend(store.cache_dir, schema_version=store.schema_version)
        wrapped.disk = store
        return wrapped
    raise TypeError(
        f"cannot adapt {type(store).__name__} to a StoreBackend (expected a "
        "backend instance, a DiskStore, a directory path or a store URL)"
    )
