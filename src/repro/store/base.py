"""The pluggable storage interface behind every persistence path.

Before this package, "persistent" meant "a directory on a shared
filesystem": the evaluation cache's disk tier, the data plane's blob
spill and the shared run manifests all hard-coded
:class:`repro.exec.store.DiskStore` plus ``flock``.  :class:`StoreBackend`
turns that assumption into one backend among several.  It covers the
three object families those consumers actually use:

**Records** (``get`` / ``put`` / ``evict``)
    Small immutable JSON documents addressed by a content digest of their
    key — the evaluation cache's persistent tier.  ``put`` is idempotent:
    two writers racing on one digest publish identical content.

**Blobs** (``put_blob`` / ``get_blob`` / ``has_blob``)
    Raw arrays addressed by the digest of their buffer — the data plane's
    spill and sync target.  Content addressing makes ``has_blob`` a safe
    dedup probe: a digest a backend has ever seen never travels again,
    even to a worker restarted on a different host.

**Documents** (``read_doc`` / ``write_doc`` / ``update_doc``)
    Small *mutable* texts addressed by name — run manifests and claim
    sidecars.  :meth:`~StoreBackend.update_doc` is the lease primitive
    that replaces raw ``FileLock``: an atomic read-modify-write whose
    concurrency control is whatever the backend does best (an advisory
    ``flock`` on the local filesystem, a conditional-PUT compare-and-swap
    loop against the object store).  Callers express merges and claims as
    a pure function of the current text and never touch locks directly.

Backends must be **picklable** (state only — no sockets or file
descriptors), because benchmark toolkit factories carry them into worker
processes.
"""

from __future__ import annotations

import abc
from typing import Any, Callable

__all__ = ["StoreBackend", "StoreError", "CircuitOpenError"]


class StoreError(OSError):
    """A backend could not complete an operation (unreachable, conflicted).

    Subclasses :class:`OSError` on purpose: every existing consumer of the
    disk store already treats ``OSError`` as "the persistence layer is
    having a bad day, degrade gracefully", and a remote backend's failures
    deserve exactly that handling.
    """


class CircuitOpenError(StoreError):
    """An operation was refused *without being tried*: the circuit is open.

    Raised by backends guarding their transport with a
    :class:`~repro.resilience.CircuitBreaker` once consecutive failures
    trip it: instead of paying the full retry × backoff budget against a
    store known to be down, the call fails in microseconds and degrades
    exactly like any other :class:`StoreError` (record misses, refused
    writes).  Consumers that must *not* proceed without the store (e.g. a
    manifest flush) still see it loudly — it is a ``StoreError``, never a
    silent ``None``.
    """


class StoreBackend(abc.ABC):
    """Abstract storage backend — see the module docstring for the model."""

    # -- records ---------------------------------------------------------------
    @abc.abstractmethod
    def get(self, digest: str) -> Any | None:
        """Return the decoded record for ``digest`` or ``None`` on a miss.

        Corrupt and schema-incompatible records are evicted and reported
        as misses — a poisoned record must never poison the run.
        """

    @abc.abstractmethod
    def put(self, digest: str, value: Any) -> bool:
        """Persist one record; ``False`` when the value cannot be stored."""

    @abc.abstractmethod
    def evict(self, digest: str) -> None:
        """Delete one record (missing records are fine)."""

    # -- blobs -----------------------------------------------------------------
    @abc.abstractmethod
    def put_blob(self, digest: str, array) -> bool:
        """Persist one array blob; ``False`` when the write failed."""

    @abc.abstractmethod
    def get_blob(self, digest: str):
        """Load one array blob (``None`` on a miss; corrupt blobs evicted)."""

    @abc.abstractmethod
    def has_blob(self, digest: str) -> bool:
        """True when the backend holds bytes for ``digest``."""

    # -- documents -------------------------------------------------------------
    @abc.abstractmethod
    def read_doc(self, name: str) -> str | None:
        """Return the current text of one document (``None`` when absent)."""

    @abc.abstractmethod
    def write_doc(self, name: str, text: str) -> None:
        """Atomically publish ``text`` as the document's new content."""

    @abc.abstractmethod
    def update_doc(self, name: str, fn: Callable[[str | None], str]) -> str:
        """Atomic read-modify-write: the lease primitive.

        ``fn`` receives the current text (``None`` when the document does
        not exist) and returns the replacement; the backend guarantees no
        concurrent update is lost between the read and the write.  ``fn``
        may run **more than once** (optimistic backends retry on
        conflict), so it must be a pure function of its input plus
        captured immutable state.  Returns the text that won.  ``fn`` may
        raise to abort — the exception propagates and the document is
        left untouched.
        """

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Release connections/handles (idempotent; default no-op)."""

    def describe(self) -> str:
        """Human-readable location, for logs and error messages."""
        return repr(self)
