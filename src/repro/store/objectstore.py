"""HTTP client backend speaking the bundled object-store protocol.

:class:`ObjectStoreBackend` implements the full :class:`~repro.store.base.
StoreBackend` contract against ``python -m repro.store.server`` (or any
server honoring the same S3-style verbs): content-addressed GET/PUT/HEAD
for records and blobs, ETag-conditional PUT for documents.  Design
points:

- **Connection pooling** — a shared, bounded pool of persistent HTTP/1.1
  connections checked out per request and returned after it, so *any*
  thread reuses a warm connection.  (The pool used to be per-thread
  ``threading.local`` affinity, which broke down in asyncio contexts:
  every ``run_in_executor`` worker thread — and every short-lived thread
  of a default executor — opened and stranded its own socket.  A stranded
  keep-alive connection was only reclaimed at GC; a serving replica
  hydrating through rotating executor threads leaked one socket per
  thread.)  Stale keep-alive connections are reconnected transparently.
- **Bounded retry with jitter** — transient transport errors and 5xx
  responses are retried under a shared :class:`~repro.resilience.
  RetryPolicy` (bounded attempts, exponential backoff, full jitter);
  persistent unavailability degrades exactly like a failing disk (record
  misses, refused writes) instead of taking the run down.
- **Circuit breaker** — consecutive *exhausted* requests (whole retry
  budgets spent) trip a :class:`~repro.resilience.CircuitBreaker` open:
  further requests are refused instantly
  (:class:`~repro.store.base.CircuitOpenError` → fast local misses)
  instead of each paying the full retry × backoff budget against a store
  known to be down; after a cooldown one half-open probe tests recovery.
  Breaker state and transport counters are visible via
  :attr:`ObjectStoreBackend.transport_stats`.
- **Compare-and-swap documents** — :meth:`update_doc` loops GET →
  ``fn`` → conditional PUT (``If-Match`` on the read ETag, or
  ``If-None-Match: *`` for creation) until the PUT lands, which gives the
  shared-manifest claim protocol lock-free mutual exclusion: of two
  workers racing on one claim document, exactly one PUT succeeds and the
  loser re-derives its claims from the winner's text.
- **Record/blob parity with the disk store** — record bytes are produced
  and validated by the same codec as :class:`~repro.exec.store.DiskStore`
  (corrupt or schema-incompatible records are evicted server-side and
  reported as misses), and blob payloads are integrity-checked against
  their content digest on read.

Backends are picklable (URL plus knobs; the connection pool never
crosses a process boundary), so toolkit factories can carry one into
benchmark worker processes.
"""

from __future__ import annotations

import http.client
import io
import socket
import threading
import urllib.parse
from dataclasses import dataclass
from typing import Any, Callable

from .. import faults
from ..resilience import BreakerStats, CircuitBreaker, RetryPolicy
from .base import CircuitOpenError, StoreBackend, StoreError
from .digest import array_digest

__all__ = ["ObjectStoreBackend", "StoreTransportStats"]

#: HTTP statuses worth a retry: the server (or a proxy in front of it)
#: says "temporarily unhappy", not "your request is wrong".
_RETRYABLE_STATUSES = frozenset({500, 502, 503, 504})


@dataclass(frozen=True)
class StoreTransportStats:
    """Request/retry/breaker snapshot of one backend (wire-stats style).

    ``requests`` counts :meth:`ObjectStoreBackend._request` calls that
    were allowed to run, ``retries`` the extra attempts the policy spent,
    ``exhausted`` the requests whose whole budget failed, and ``breaker``
    the circuit's own counters (state, opens, instant refusals).
    """

    requests: int = 0
    retries: int = 0
    exhausted: int = 0
    connections_opened: int = 0
    pooled_idle: int = 0
    breaker: BreakerStats = BreakerStats(state="closed", consecutive_failures=0)


class _PooledConnection(http.client.HTTPConnection):
    """HTTP connection with Nagle disabled.

    Store traffic is many small request/response pairs on one keep-alive
    connection; Nagle interacting with delayed ACKs turns each into a
    ~40ms stall, which is the difference between a warm cache run served
    in milliseconds and one served in seconds.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class ObjectStoreBackend(StoreBackend):
    """Store records, blobs and documents in a remote object store.

    Parameters
    ----------
    url:
        Server base URL, e.g. ``"http://10.0.0.5:7171"``.  Only ``http``
        is spoken (the server is for trusted networks, like the remote
        executor's worker protocol).
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Transport/5xx retry budget per request (on top of the first try).
    retry_backoff:
        Base sleep of the exponential backoff; every retry sleeps
        ``backoff * 2**attempt`` plus up to 100% random jitter, so a
        thundering herd of shard workers decorrelates instead of
        hammering the server in lockstep.
    cas_attempts:
        Bound on :meth:`update_doc` compare-and-swap rounds; exceeding it
        raises :class:`~repro.store.base.StoreError` (it means pathological
        contention, not a transient blip).
    retry_policy:
        Overrides the transport retry behaviour wholesale; when omitted
        one is derived from ``retries``/``retry_backoff`` so existing
        callers keep their tuning.
    breaker_failures / breaker_reset_after:
        Consecutive exhausted requests that trip the circuit open, and
        the open-state cooldown before a half-open probe.
    pool_size:
        Idle keep-alive connections retained for reuse.  Concurrency is
        *not* capped at this bound — a burst beyond it opens extra
        connections that are closed instead of pooled when they come
        back — it only bounds what stays warm.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 10.0,
        retries: int = 3,
        retry_backoff: float = 0.05,
        cas_attempts: int = 64,
        schema_version: int | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_failures: int = 5,
        breaker_reset_after: float = 10.0,
        pool_size: int = 8,
    ):
        parsed = urllib.parse.urlsplit(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("", "http"):
            raise ValueError(f"ObjectStoreBackend speaks plain http, not {parsed.scheme!r}")
        if not parsed.hostname:
            raise ValueError(f"object-store URL {url!r} has no host")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.base_path = parsed.path.rstrip("/")
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self.cas_attempts = int(cas_attempts)
        self.retry_policy = retry_policy or RetryPolicy(
            attempts=self.retries + 1, base_backoff=self.retry_backoff, max_backoff=2.0
        )
        self.breaker_failures = int(breaker_failures)
        self.breaker_reset_after = float(breaker_reset_after)
        self.pool_size = int(pool_size)
        if schema_version is None:
            from ..exec.store import SCHEMA_VERSION

            schema_version = SCHEMA_VERSION
        self.schema_version = int(schema_version)
        self._init_runtime()

    def _init_runtime(self) -> None:
        """(Re)create the per-process state: pool, breaker, counters."""
        # Backward-compat shim: ``pool_size`` postdates pickled configs.
        self.pool_size = int(getattr(self, "pool_size", 8))
        self._pool_lock = threading.Lock()
        self._idle: list[http.client.HTTPConnection] = []
        self._opened = 0
        self._breaker = CircuitBreaker(
            failure_threshold=self.breaker_failures,
            reset_after=self.breaker_reset_after,
        )
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._retry_count = 0
        self._exhausted = 0

    # -- pickling (pool, breaker and counters stay home) -----------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for runtime in (
            "_pool_lock",
            "_idle",
            "_opened",
            "_breaker",
            "_stats_lock",
            "_requests",
            "_retry_count",
            "_exhausted",
        ):
            state.pop(runtime, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Each process judges the store's health for itself: a breaker
        # tripped by the parent's network path says nothing about ours.
        self._init_runtime()

    @property
    def transport_stats(self) -> StoreTransportStats:
        """Snapshot of request/retry counters and breaker state."""
        with self._pool_lock:
            opened, idle = self._opened, len(self._idle)
        with self._stats_lock:
            return StoreTransportStats(
                requests=self._requests,
                retries=self._retry_count,
                exhausted=self._exhausted,
                connections_opened=opened,
                pooled_idle=idle,
                breaker=self._breaker.stats(),
            )

    # -- transport -------------------------------------------------------------
    def _acquire_connection(self) -> http.client.HTTPConnection:
        """Check a pooled connection out (or open a fresh one)."""
        with self._pool_lock:
            if self._idle:
                return self._idle.pop()
            self._opened += 1
        return _PooledConnection(self.host, self.port, timeout=self.timeout)

    def _release_connection(self, conn: http.client.HTTPConnection) -> None:
        """Return a healthy keep-alive connection for any thread to reuse."""
        with self._pool_lock:
            if len(self._idle) < self.pool_size:
                self._idle.append(conn)
                return
        self._discard_connection(conn)

    @staticmethod
    def _discard_connection(conn: http.client.HTTPConnection) -> None:
        try:
            conn.close()
        except OSError:
            pass

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict, bytes]:
        """One request with pooled connections, bounded retry, breaker.

        Conditional PUTs are retried too: they are idempotent by
        construction (the precondition re-evaluates against the stored
        content, so a retry of an already-applied PUT fails the
        precondition instead of double-applying).  Only *exhausted*
        requests (whole budget spent) and final retryable 5xx responses
        count against the breaker, so blips the retry layer absorbs never
        trip it.
        """
        if not self._breaker.allow():
            raise CircuitOpenError(
                f"object store {self.host}:{self.port} circuit open "
                "(recent requests exhausted their retry budget)"
            )
        with self._stats_lock:
            self._requests += 1
        url = f"{self.base_path}{path}"
        policy = self.retry_policy
        last_error: Exception | None = None
        for attempt in range(policy.attempts):
            if attempt:
                with self._stats_lock:
                    self._retry_count += 1
                policy.sleep(attempt - 1)
            injected = faults.fire("store.client.request", detail=f"{method} {path}")
            if injected is not None and injected.action == "error":
                # Simulated transport failure: consumes retry budget
                # exactly like a refused connection would.
                last_error = ConnectionError(f"injected transport fault ({method} {path})")
                continue
            conn = self._acquire_connection()
            try:
                conn.request(method, url, body=body, headers=headers or {})
                response = conn.getresponse()
                payload = response.read()
            except (http.client.HTTPException, ConnectionError, socket.timeout, OSError) as exc:
                # A stale keep-alive connection and a dead server look the
                # same here; discard and let the retry budget decide.
                self._discard_connection(conn)
                last_error = exc
                continue
            if response.will_close:
                # The server asked to close (e.g. an error reply sent
                # before it drained our body): the connection is not
                # reusable, so retire it instead of pooling it.
                self._discard_connection(conn)
            else:
                self._release_connection(conn)
            if response.status in _RETRYABLE_STATUSES:
                if attempt < policy.retries:
                    last_error = StoreError(f"{method} {url} -> {response.status}")
                    continue
                # Budget spent and the server is still answering 5xx:
                # that is an unhealthy store, not an unlucky request.
                self._note_exhausted()
                return response.status, dict(response.getheaders()), payload
            self._breaker.record_success()
            return response.status, dict(response.getheaders()), payload
        self._note_exhausted()
        raise StoreError(
            f"object store {self.host}:{self.port} unreachable after "
            f"{policy.attempts} attempts: {last_error}"
        )

    def _note_exhausted(self) -> None:
        with self._stats_lock:
            self._exhausted += 1
        self._breaker.record_failure()

    @staticmethod
    def _etag(headers: dict) -> str | None:
        for key, value in headers.items():
            if key.lower() == "etag":
                return value.strip().strip('"')
        return None

    # -- records ---------------------------------------------------------------
    def get(self, digest: str) -> Any | None:
        from ..exec.store import decode_record

        try:
            status, _, payload = self._request("GET", f"/records/{digest}")
        except StoreError:
            return None
        if status != 200:
            return None
        try:
            return decode_record(payload.decode("utf-8"), self.schema_version)
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            self.evict(digest)
            return None

    def put(self, digest: str, value: Any) -> bool:
        from ..exec.store import encode_record

        text = encode_record(digest, value, self.schema_version)
        if text is None:
            return False
        try:
            status, _, _ = self._request("PUT", f"/records/{digest}", text.encode("utf-8"))
        except StoreError:
            return False
        return status in (200, 201)

    def evict(self, digest: str) -> None:
        try:
            self._request("DELETE", f"/records/{digest}")
        except StoreError:
            pass

    # -- blobs -----------------------------------------------------------------
    def put_blob(self, digest: str, array) -> bool:
        import numpy as np

        buffer = io.BytesIO()
        try:
            np.save(buffer, np.asarray(array), allow_pickle=False)
        except ValueError:
            return False
        try:
            status, _, _ = self._request("PUT", f"/blobs/{digest}", buffer.getvalue())
        except StoreError:
            return False
        return status in (200, 201)

    def get_blob(self, digest: str):
        import numpy as np

        try:
            status, _, payload = self._request("GET", f"/blobs/{digest}")
        except StoreError:
            return None
        if status != 200:
            return None
        injected = faults.fire("store.client.blob", detail=digest)
        if injected is not None and injected.action == "corrupt":
            payload = faults.garble(payload)
        try:
            array = np.load(io.BytesIO(payload), allow_pickle=False)
        except (ValueError, OSError):
            array = None
        # Blobs are content-addressed: a payload whose buffer does not
        # hash back to its own name is truncated or tampered — evict it
        # rather than hand corrupt data to a fit.
        if array is None or array_digest(array) != digest:
            try:
                self._request("DELETE", f"/blobs/{digest}")
            except StoreError:
                pass
            return None
        return array

    def has_blob(self, digest: str) -> bool:
        try:
            status, _, _ = self._request("HEAD", f"/blobs/{digest}")
        except StoreError:
            return False
        return status == 200

    # -- documents -------------------------------------------------------------
    @staticmethod
    def _doc_segment(name: str) -> str:
        return urllib.parse.quote(str(name), safe="")

    def read_doc(self, name: str) -> str | None:
        text, _ = self._read_doc_versioned(name)
        return text

    def _read_doc_versioned(self, name: str) -> tuple[str | None, str | None]:
        status, headers, payload = self._request("GET", f"/docs/{self._doc_segment(name)}")
        if status != 200:
            return None, None
        return payload.decode("utf-8"), self._etag(headers)

    def write_doc(self, name: str, text: str) -> None:
        status, _, _ = self._request(
            "PUT", f"/docs/{self._doc_segment(name)}", text.encode("utf-8")
        )
        if status not in (200, 201):
            raise StoreError(f"document write refused with status {status}")

    def update_doc(self, name: str, fn: Callable[[str | None], str]) -> str:
        """Read-modify-write via conditional PUT (compare-and-swap loop)."""
        segment = self._doc_segment(name)
        for attempt in range(self.cas_attempts):
            current, etag = self._read_doc_versioned(name)
            text = fn(current)
            headers = {"If-None-Match": "*"} if etag is None else {"If-Match": f'"{etag}"'}
            status, _, _ = self._request(
                "PUT", f"/docs/{segment}", text.encode("utf-8"), headers
            )
            if status in (200, 201):
                return text
            if status != 412:
                raise StoreError(f"document update refused with status {status}")
            # Lost the race: decorrelate and re-derive from the winner.
            self.retry_policy.sleep(0)
        raise StoreError(
            f"document {name!r} still contended after {self.cas_attempts} "
            "compare-and-swap attempts"
        )

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Close every idle pooled connection (the backend stays usable)."""
        with self._pool_lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            self._discard_connection(conn)

    def healthy(self) -> bool:
        """True when the server answers its health route."""
        try:
            status, _, _ = self._request("GET", "/healthz")
        except StoreError:
            return False
        return status == 200

    def describe(self) -> str:
        return f"http://{self.host}:{self.port}{self.base_path}"

    def __repr__(self) -> str:
        return f"ObjectStoreBackend(url={self.describe()!r})"
