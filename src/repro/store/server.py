"""``python -m repro.store.server`` — the bundled S3-style object store.

A deliberately small HTTP server speaking the protocol
:class:`~repro.store.objectstore.ObjectStoreBackend` expects, so cloud
shards with **no shared filesystem** can still share one evaluation
store, one blob vault and one run manifest.  Three object families, three
URL prefixes::

    GET/HEAD/PUT/DELETE  /records/<digest>   immutable JSON records
    GET/HEAD/PUT/DELETE  /blobs/<digest>     immutable ``.npy`` blobs
    GET/HEAD/PUT/DELETE  /docs/<name>        mutable documents (manifests)
    GET                  /healthz            object counts, for smoke tests

Semantics:

- **ETag = BLAKE2 digest of the body** on every GET/HEAD/PUT response, so
  clients can cache and compare content without a second round trip.
- **Conditional PUT** on documents: ``If-Match: "<etag>"`` succeeds only
  against exactly that stored content, ``If-None-Match: *`` only against
  absence; anything else is ``412 Precondition Failed``.  This is the
  compare-and-swap the shared-manifest claim protocol runs on — the
  object-store replacement for ``flock``.
- Records and blobs are content-addressed and therefore idempotent:
  concurrent PUTs of one digest publish identical bytes, last write wins
  harmlessly.
- Writes are atomic (staged in the destination directory, published with
  ``os.replace``), so a killed server never leaves a torn object.

The server is threaded (one OS thread per connection, HTTP/1.1
keep-alive) and persists everything under ``--root``, which uses the
record/blob layout of :class:`~repro.exec.store.DiskStore` — a store
directory can be served over HTTP one day and mounted as a
``LocalFSBackend`` the next.

This process trusts its network: there is no authentication and request
bodies are JSON/array bytes interpreted by clients.  Bind it to loopback
or a private interface, exactly like ``python -m repro.exec.remote``.
"""

from __future__ import annotations

import json
import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Sequence

from .. import faults
from .digest import text_digest

__all__ = ["StoreServer", "main"]

#: Bodies beyond this size are refused before reading: a confused client
#: must not make the server buffer gigabytes.
MAX_BODY_BYTES = 512 * 1024 * 1024

_DIGEST_RE = re.compile(r"^[0-9a-f]{8,128}$")
#: Document names arrive percent-quoted (``quote(name, safe="")``), so a
#: valid segment never contains ``/``; this guard also refuses dot-files
#: and anything that could walk out of the docs directory.
_DOC_RE = re.compile(r"^[A-Za-z0-9._%+-]{1,512}$")


class _StoreState:
    """On-disk state shared by every request thread of one server."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        # Document compare-and-swap must read, compare and publish as one
        # step; a single process-wide lock is plenty at manifest sizes.
        self.doc_lock = threading.Lock()

    def record_path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def blob_path(self, digest: str) -> Path:
        return self.root / "blobs" / digest[:2] / f"{digest}.npy"

    def doc_path(self, quoted_name: str) -> Path:
        return self.root / "docs" / quoted_name

    def counts(self) -> dict:
        records = sum(1 for _ in self.root.glob("??/*.json")) if self.root.is_dir() else 0
        blobs = sum(1 for _ in self.root.glob("blobs/??/*.npy")) if self.root.is_dir() else 0
        docs_dir = self.root / "docs"
        docs = sum(1 for _ in docs_dir.iterdir()) if docs_dir.is_dir() else 0
        return {"status": "ok", "records": records, "blobs": blobs, "docs": docs}


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    from ..exec.store import _stage_temp

    fd, temp_name = _stage_temp(path, path.suffix)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(temp_name, path)
    except OSError:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class _Handler(BaseHTTPRequestHandler):
    # Keep-alive is what makes the client's pooled connections worth
    # having; HTTP/1.1 requires Content-Length on every response below.
    protocol_version = "HTTP/1.1"
    server_version = "repro-store/1"
    # Small request/response pairs on persistent connections: Nagle plus
    # delayed ACKs would add ~40ms to every round trip.
    disable_nagle_algorithm = True

    state: _StoreState  # injected by StoreServer

    # -- plumbing --------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _reply(
        self,
        status: int,
        body: bytes = b"",
        etag: str | None = None,
        content_type: str = "application/octet-stream",
        head_only: bool = False,
        close: bool = False,
    ) -> None:
        # ``close=True`` is for error replies sent *before* the request
        # body was consumed: leaving the keep-alive connection open would
        # make the unread body bytes parse as the next request line,
        # poisoning every later exchange on the pooled connection.
        if close:
            self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", f'"{etag}"')
        if close:
            self.send_header("Connection", "close")
        self.end_headers()
        if body and not head_only:
            self.wfile.write(body)

    def _read_body(self) -> bytes | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._reply(400, b"bad Content-Length", close=True)
            return None
        if length > MAX_BODY_BYTES:
            self._reply(413, b"body too large", close=True)
            return None
        return self.rfile.read(length)

    def _route(self) -> tuple[str, str] | None:
        """Split ``/family/name`` and validate the name, or answer an error.

        Error replies close the connection when a request body may still
        be sitting unread on the socket (PUT).
        """
        unread_body = self.command == "PUT"
        path = self.path.split("?", 1)[0]
        if path in ("/healthz", "/"):
            return ("health", "")
        parts = path.strip("/").split("/")
        if len(parts) != 2 or parts[0] not in ("records", "blobs", "docs"):
            self._reply(404, b"unknown route", close=unread_body)
            return None
        family, name = parts
        pattern = _DOC_RE if family == "docs" else _DIGEST_RE
        if not pattern.match(name):
            self._reply(400, b"invalid object name", close=unread_body)
            return None
        return family, name

    def _object_path(self, family: str, name: str) -> Path:
        if family == "records":
            return self.state.record_path(name)
        if family == "blobs":
            return self.state.blob_path(name)
        return self.state.doc_path(name)

    def _injected_unavailable(self) -> bool:
        """``store.server.request`` seam: answer 503 before doing any work.

        Simulates a proxy/broker brownout in front of the store.  The
        reply closes the connection (the request body, if any, is still
        unread on the socket) — exactly how a load balancer sheds load.
        """
        rule = faults.fire("store.server.request", detail=f"{self.command} {self.path}")
        if rule is not None and rule.action == "http_503":
            self._reply(503, b"injected unavailability", close=True)
            return True
        return False

    # -- verbs -----------------------------------------------------------------
    def _get(self, head_only: bool) -> None:
        if self._injected_unavailable():
            return
        route = self._route()
        if route is None:
            return
        family, name = route
        if family == "health":
            body = json.dumps(self.state.counts()).encode("utf-8")
            self._reply(200, body, content_type="application/json", head_only=head_only)
            return
        path = self._object_path(family, name)
        if head_only:
            # HEAD is the dedup probe (``has_blob``): existence and size
            # from ``stat``, never a read — hashing a multi-hundred-MB
            # blob to decorate an existence check with an ETag would make
            # every probe cost a full disk scan.
            try:
                size = path.stat().st_size
            except (FileNotFoundError, NotADirectoryError):
                self._reply(404, head_only=True)
                return
            except OSError:
                self._reply(500, head_only=True)
                return
            self.send_response(200)
            self.send_header("Content-Type", "application/octet-stream")
            self.send_header("Content-Length", str(size))
            self.end_headers()
            return
        try:
            body = path.read_bytes()
        except (FileNotFoundError, NotADirectoryError):
            self._reply(404, b"not found")
            return
        except OSError:
            self._reply(500, b"unreadable object")
            return
        self._reply(200, body, etag=text_digest(body))

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._get(head_only=False)

    def do_HEAD(self) -> None:  # noqa: N802
        self._get(head_only=True)

    def do_PUT(self) -> None:  # noqa: N802
        if self._injected_unavailable():
            return
        route = self._route()
        if route is None:
            return
        family, name = route
        if family == "health":
            self._reply(405, b"read-only route", close=True)
            return
        body = self._read_body()
        if body is None:
            return
        path = self._object_path(family, name)
        if family == "docs":
            self._put_doc(path, body)
            return
        # Records and blobs are content-addressed: unconditional, idempotent.
        try:
            _atomic_write_bytes(path, body)
        except OSError:
            self._reply(507, b"write failed")
            return
        self._reply(201, b"", etag=text_digest(body))

    def _put_doc(self, path: Path, body: bytes) -> None:
        """Document PUT honoring ``If-Match`` / ``If-None-Match: *``."""
        if_match = self.headers.get("If-Match")
        if_none_match = self.headers.get("If-None-Match")
        with self.state.doc_lock:
            try:
                current = path.read_bytes()
            except (FileNotFoundError, NotADirectoryError):
                current = None
            if if_none_match is not None:
                if if_none_match.strip() != "*":
                    self._reply(400, b"only If-None-Match: * is supported")
                    return
                if current is not None:
                    self._reply(412, b"document exists", etag=text_digest(current))
                    return
            if if_match is not None:
                expected = if_match.strip().strip('"')
                if current is None or text_digest(current) != expected:
                    self._reply(
                        412,
                        b"etag mismatch",
                        etag=None if current is None else text_digest(current),
                    )
                    return
            try:
                _atomic_write_bytes(path, body)
            except OSError:
                self._reply(507, b"write failed")
                return
        rule = faults.fire("store.server.doc_put", detail=path.name)
        if rule is not None and rule.action == "drop":
            # The write is durable but the response never arrives — a
            # partition hitting exactly the conditional PUT's ack.  The
            # client's transport retry will fail the precondition (412,
            # the ETag moved under it) and re-derive from the stored text.
            self.close_connection = True
            return
        self._reply(200 if current is not None else 201, b"", etag=text_digest(body))

    def do_DELETE(self) -> None:  # noqa: N802
        if self._injected_unavailable():
            return
        route = self._route()
        if route is None:
            return
        family, name = route
        if family == "health":
            self._reply(405, b"read-only route")
            return
        try:
            self._object_path(family, name).unlink()
        except FileNotFoundError:
            self._reply(404, b"not found")
            return
        except OSError:
            self._reply(500, b"delete failed")
            return
        self._reply(204)


class StoreServer:
    """Embeddable object-store server (the CLI wraps this too).

    Parameters
    ----------
    root:
        Directory persisting every object; created on first write.
    host, port:
        Listen address; ``port=0`` picks a free port (``.address`` reports
        the bound one — handy for tests).
    """

    def __init__(self, root: str | os.PathLike, host: str = "127.0.0.1", port: int = 0):
        self.state = _StoreState(root)
        handler = type("BoundHandler", (_Handler,), {"state": self.state})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.address: tuple[str, int] = self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self._httpd.serve_forever(poll_interval=0.1)

    def serve_in_background(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()

    def __enter__(self) -> "StoreServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"StoreServer(url={self.url!r}, root={str(self.state.root)!r})"


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.store.server``: serve an object store until killed."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.store.server",
        description="Serve records, blobs and documents for ObjectStoreBackend clients.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="listen address")
    parser.add_argument("--port", type=int, default=7171, help="listen port (0 = any)")
    parser.add_argument(
        "--root",
        default="repro-store",
        help="directory persisting every object (DiskStore layout)",
    )
    args = parser.parse_args(argv)
    server = StoreServer(root=args.root, host=args.host, port=args.port)
    host, port = server.address
    print(
        f"[store] serving on http://{host}:{port} "
        f"(root {args.root}, pid {os.getpid()})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
