"""Unified BLAKE2 content digests shared by every storage consumer.

Three subsystems address content by digest: the evaluation cache names
records after their key, the data plane names base arrays after their
buffer, and blob spill/sync uses the data plane's digests as object
addresses.  Historically each computed its own hash; this module is the
single source of those digests so one array hashed once serves cache
keys, ``ArrayRef`` addresses and blob names alike.

- :func:`key_digest` — record addresses (20-byte BLAKE2 of the cache
  key's canonical ``repr``), exactly what ``repro.exec.store`` has always
  written, so existing stores keep hitting.
- :func:`array_digest` — blob/ref addresses (16-byte BLAKE2 of the raw
  array buffer), exactly the data plane's historical scheme.
- :func:`text_digest` — ETags for mutable documents (manifests, claim
  sidecars) in the object-store protocol.

``array_digest`` additionally **memoizes per array object**: registering
a dataset with the data plane, fingerprinting it for the suite spec and
addressing its blob all hash the same buffer, and on long series each
extra pass is a full-content scan.  The memo is keyed by object identity
with a weak reference guarding against id reuse, and only arrays at
least ``_MEMO_MIN_BYTES`` big are remembered (hashing tiny arrays is
cheaper than the bookkeeping).  The memo assumes what every fingerprint
consumer here already assumes: arrays are not mutated in place between
uses within a run.  As a tripwire, an edge sample of the buffer is
re-checked on every hit, so typical in-place mutations (appended
arrivals, rolled windows, rescales) re-hash instead of returning a stale
digest; only a mutation confined strictly to interior bytes escapes.
Call :func:`clear_digest_memo` to drop the memo.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from typing import Any, Hashable

import numpy as np

__all__ = [
    "array_digest",
    "key_digest",
    "text_digest",
    "clear_digest_memo",
    "digest_memo_stats",
]

#: Arrays smaller than this are hashed directly; the memo dict would cost
#: more than the hash.
_MEMO_MIN_BYTES = 4096

#: ``id(array) -> (weakref, nbytes, digest, guard)``.  The weakref both
#: evicts the entry when the array is collected and guards against id reuse
#: (an entry whose referent is not the queried array is stale and ignored);
#: ``guard`` is a cheap edge sample of the buffer re-checked on every hit.
_MEMO: dict[int, tuple[Any, int, str, bytes]] = {}
_MEMO_LOCK = threading.Lock()
_memo_hits = 0
_memo_misses = 0

_GUARD_BYTES = 32


def _hash_buffer(values: np.ndarray) -> str:
    return hashlib.blake2b(values.data, digest_size=16).hexdigest()


def _guard_sample(values: np.ndarray) -> bytes:
    """First and last bytes of the buffer: a cheap in-place-mutation tripwire.

    Most real mutations of a hashed base (appended arrivals, a rolled
    window, a rescale) touch the buffer's edges; sampling them catches
    those without rescanning megabytes.  A mutation confined strictly to
    interior bytes still slips through — the documented residual of the
    no-mutation assumption.
    """
    flat = values.data.cast("B")
    return bytes(flat[:_GUARD_BYTES]) + bytes(flat[-_GUARD_BYTES:])


def array_digest(values: np.ndarray) -> str:
    """BLAKE2 content digest of an array's buffer (memoized per object).

    This is the digest the data plane embeds in :class:`ArrayRef`, the
    blob stores use as object addresses, and the evaluation cache folds
    into its slice fingerprints — one name per byte content everywhere.
    """
    global _memo_hits, _memo_misses
    values = np.asarray(values)
    if not values.flags.c_contiguous:
        # The compaction copy is transient; memoizing it would be useless.
        return _hash_buffer(np.ascontiguousarray(values))
    if values.nbytes < _MEMO_MIN_BYTES:
        return _hash_buffer(values)
    key = id(values)
    guard = _guard_sample(values)
    with _MEMO_LOCK:
        entry = _MEMO.get(key)
        if entry is not None and entry[0]() is values and entry[3] == guard:
            _memo_hits += 1
            return entry[2]
    digest = _hash_buffer(values)
    try:
        ref = weakref.ref(values, lambda _ref, _key=key: _MEMO.pop(_key, None))
    except TypeError:  # pragma: no cover - ndarray subclasses without weakref
        return digest
    with _MEMO_LOCK:
        _memo_misses += 1
        _MEMO[key] = (ref, values.nbytes, digest, guard)
    return digest


def key_digest(key: Hashable) -> str:
    """Stable content address of one cache key.

    Keys are nested tuples of primitives (strings, numbers, ``None``,
    bytes) whose ``repr`` is deterministic across processes and runs, so a
    digest of the ``repr`` is a valid cross-run address.  (This is exactly
    why callable fingerprints must not include ``id(...)`` — see
    ``repro.exec.cache._value_fingerprint``.)
    """
    return hashlib.blake2b(repr(key).encode("utf-8"), digest_size=20).hexdigest()


def text_digest(payload: bytes | str) -> str:
    """Digest used as the ETag of mutable store documents."""
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    return hashlib.blake2b(payload, digest_size=20).hexdigest()


def clear_digest_memo() -> None:
    """Drop every memoized array digest and reset the counters."""
    global _memo_hits, _memo_misses
    with _MEMO_LOCK:
        _MEMO.clear()
        _memo_hits = 0
        _memo_misses = 0


def digest_memo_stats() -> dict:
    """``{"hits", "misses", "entries", "bytes"}`` of the array-digest memo."""
    with _MEMO_LOCK:
        return {
            "hits": _memo_hits,
            "misses": _memo_misses,
            "entries": len(_MEMO),
            "bytes": sum(entry[1] for entry in _MEMO.values()),
        }
