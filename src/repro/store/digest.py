"""Unified BLAKE2 content digests shared by every storage consumer.

Three subsystems address content by digest: the evaluation cache names
records after their key, the data plane names base arrays after their
buffer, and blob spill/sync uses the data plane's digests as object
addresses.  Historically each computed its own hash; this module is the
single source of those digests so one array hashed once serves cache
keys, ``ArrayRef`` addresses and blob names alike.

- :func:`key_digest` — record addresses (20-byte BLAKE2 of the cache
  key's canonical ``repr``), exactly what ``repro.exec.store`` has always
  written, so existing stores keep hitting.
- :func:`array_digest` — blob/ref addresses (16-byte BLAKE2 of the raw
  array buffer), exactly the data plane's historical scheme.
- :func:`text_digest` — ETags for mutable documents (manifests, claim
  sidecars) in the object-store protocol.

``array_digest`` additionally **memoizes per array object**: registering
a dataset with the data plane, fingerprinting it for the suite spec and
addressing its blob all hash the same buffer, and on long series each
extra pass is a full-content scan.  The memo is keyed by object identity
with a weak reference guarding against id reuse, and only arrays at
least ``_MEMO_MIN_BYTES`` big are remembered (hashing tiny arrays is
cheaper than the bookkeeping).  The memo assumes what every fingerprint
consumer here already assumes: arrays are not mutated in place between
uses within a run.  As a tripwire, an edge sample of the buffer is
re-checked on every hit, so typical in-place mutations (appended
arrivals, rolled windows, rescales) re-hash instead of returning a stale
digest; only a mutation confined strictly to interior bytes escapes.
Call :func:`clear_digest_memo` to drop the memo.

**Append bases.**  Streaming workloads grow one buffer for the life of a
run: an arrival buffer appends rows, every ranking pass hashes dozens of
*prefixes* of the same bytes, and a per-object memo is useless because
each prefix is a fresh transient view.  :func:`register_append_base`
declares a buffer append-only (bytes ``[0, n)`` never change once
written), after which :func:`array_digest` recognizes any zero-offset
contiguous prefix view of it and serves the digest from an incremental
BLAKE2 state: extending a hashed prefix by Δ bytes costs O(Δ), and every
previously requested prefix length is memoized outright.  The digests
are byte-for-byte the ones a full rehash would produce, so cache keys —
and warm persistent stores — are unchanged by the fast path.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from typing import Any, Hashable

import numpy as np

__all__ = [
    "array_digest",
    "key_digest",
    "text_digest",
    "clear_digest_memo",
    "digest_memo_stats",
    "register_append_base",
    "append_base_stats",
]

#: Arrays smaller than this are hashed directly; the memo dict would cost
#: more than the hash.
_MEMO_MIN_BYTES = 4096

#: ``id(array) -> (weakref, nbytes, digest, guard)``.  The weakref both
#: evicts the entry when the array is collected and guards against id reuse
#: (an entry whose referent is not the queried array is stale and ignored);
#: ``guard`` is a cheap edge sample of the buffer re-checked on every hit.
_MEMO: dict[int, tuple[Any, int, str, bytes]] = {}
_MEMO_LOCK = threading.Lock()
_memo_hits = 0
_memo_misses = 0

_GUARD_BYTES = 32


class _AppendEntry:
    """Incremental hash state of one registered append-only base buffer.

    ``states`` maps a byte count to a BLAKE2 object that has consumed
    exactly those leading bytes (hashlib objects stay updatable after
    ``hexdigest``); ``digests`` memoizes finished prefix digests.  A new
    prefix length extends the nearest smaller state over only the gap.
    """

    __slots__ = ("ref", "states", "digests")

    def __init__(self, ref: Any):
        self.ref = ref
        self.states: dict[int, Any] = {}
        self.digests: dict[int, str] = {}


#: ``id(base) -> _AppendEntry``; weakref cleanup mirrors ``_MEMO``.
_APPEND: dict[int, _AppendEntry] = {}
_APPEND_LOCK = threading.Lock()
_append_hits = 0
_append_extended_bytes = 0
_append_full_rehashes = 0


def register_append_base(
    base: np.ndarray,
    carry_from: np.ndarray | None = None,
    carry_bytes: int | None = None,
) -> np.ndarray:
    """Declare ``base`` an append-only buffer with incremental prefix hashing.

    The registering owner promises that bytes ``[0, n)`` are never
    rewritten once a length-``n`` prefix has been exposed for hashing —
    exactly the discipline :class:`repro.stream.ArrivalBuffer` and
    ``TimeSeriesFrame.append_rows`` enforce by handing out read-only
    views.  When the owner reallocates (geometric capacity growth copies
    the prefix into a bigger buffer), pass the old buffer as
    ``carry_from`` with ``carry_bytes`` (the copied byte count): the old
    incremental states transfer instead of rehashing history.  Returns
    ``base`` for chaining.
    """
    base = np.asarray(base)
    if not base.flags.c_contiguous:
        raise ValueError("an append base must be C-contiguous")
    key = id(base)
    try:
        ref = weakref.ref(base, lambda _ref, _key=key: _APPEND.pop(_key, None))
    except TypeError:  # pragma: no cover - ndarray subclasses without weakref
        return base
    entry = _AppendEntry(ref)
    with _APPEND_LOCK:
        if carry_from is not None:
            donor = _APPEND.get(id(carry_from))
            if donor is not None and donor.ref() is carry_from:
                limit = donor.ref().nbytes if carry_bytes is None else int(carry_bytes)
                limit = min(limit, base.nbytes)
                entry.states = {
                    stop: state.copy()
                    for stop, state in donor.states.items()
                    if stop <= limit
                }
                entry.digests = {
                    stop: digest
                    for stop, digest in donor.digests.items()
                    if stop <= limit
                }
        _APPEND[key] = entry
    return base


def _append_entry_for(values: np.ndarray) -> tuple[_AppendEntry, np.ndarray] | None:
    """The registered base ``values`` is a zero-offset prefix view of, if any."""
    candidates = [values]
    base = values.base
    if isinstance(base, np.ndarray):
        candidates.append(base)
    for candidate in candidates:
        entry = _APPEND.get(id(candidate))
        if entry is None or entry.ref() is not candidate:
            continue
        if (
            values.ctypes.data == candidate.ctypes.data
            and values.nbytes <= candidate.nbytes
        ):
            return entry, candidate
        return None
    return None


def _append_prefix_digest(entry: _AppendEntry, base: np.ndarray, nbytes: int) -> str:
    global _append_hits, _append_extended_bytes, _append_full_rehashes
    with _APPEND_LOCK:
        digest = entry.digests.get(nbytes)
        if digest is not None:
            _append_hits += 1
            return digest
        start = 0
        state = None
        for stop in entry.states:
            if start < stop <= nbytes:
                start = stop
        if start:
            state = entry.states[start].copy()
        else:
            state = hashlib.blake2b(digest_size=16)
            _append_full_rehashes += 1
        if nbytes > start:
            state.update(base.data.cast("B")[start:nbytes])
            _append_extended_bytes += nbytes - start
        entry.states[nbytes] = state
        digest = state.hexdigest()
        entry.digests[nbytes] = digest
        return digest


def append_base_stats() -> dict:
    """Counters of the append-base fast path (for benchmarks and tests)."""
    with _APPEND_LOCK:
        return {
            "bases": len(_APPEND),
            "prefix_hits": _append_hits,
            "extended_bytes": _append_extended_bytes,
            "full_rehashes": _append_full_rehashes,
        }


def _hash_buffer(values: np.ndarray) -> str:
    return hashlib.blake2b(values.data, digest_size=16).hexdigest()


def _guard_sample(values: np.ndarray) -> bytes:
    """First and last bytes of the buffer: a cheap in-place-mutation tripwire.

    Most real mutations of a hashed base (appended arrivals, a rolled
    window, a rescale) touch the buffer's edges; sampling them catches
    those without rescanning megabytes.  A mutation confined strictly to
    interior bytes still slips through — the documented residual of the
    no-mutation assumption.
    """
    flat = values.data.cast("B")
    return bytes(flat[:_GUARD_BYTES]) + bytes(flat[-_GUARD_BYTES:])


def array_digest(values: np.ndarray) -> str:
    """BLAKE2 content digest of an array's buffer (memoized per object).

    This is the digest the data plane embeds in :class:`ArrayRef`, the
    blob stores use as object addresses, and the evaluation cache folds
    into its slice fingerprints — one name per byte content everywhere.
    """
    global _memo_hits, _memo_misses
    values = np.asarray(values)
    if not values.flags.c_contiguous:
        # The compaction copy is transient; memoizing it would be useless.
        return _hash_buffer(np.ascontiguousarray(values))
    appendable = _append_entry_for(values)
    if appendable is not None:
        entry, base = appendable
        return _append_prefix_digest(entry, base, values.nbytes)
    if values.nbytes < _MEMO_MIN_BYTES:
        return _hash_buffer(values)
    key = id(values)
    guard = _guard_sample(values)
    with _MEMO_LOCK:
        entry = _MEMO.get(key)
        # The stored byte count must match too: an in-place ``resize``
        # keeps the object (and its id) while growing the buffer, and a
        # zero-padded growth leaves the edge sample unchanged — without
        # the size check such an array would be served its stale,
        # shorter-prefix digest.
        if (
            entry is not None
            and entry[0]() is values
            and entry[1] == values.nbytes
            and entry[3] == guard
        ):
            _memo_hits += 1
            return entry[2]
    digest = _hash_buffer(values)
    try:
        ref = weakref.ref(values, lambda _ref, _key=key: _MEMO.pop(_key, None))
    except TypeError:  # pragma: no cover - ndarray subclasses without weakref
        return digest
    with _MEMO_LOCK:
        _memo_misses += 1
        _MEMO[key] = (ref, values.nbytes, digest, guard)
    return digest


def key_digest(key: Hashable) -> str:
    """Stable content address of one cache key.

    Keys are nested tuples of primitives (strings, numbers, ``None``,
    bytes) whose ``repr`` is deterministic across processes and runs, so a
    digest of the ``repr`` is a valid cross-run address.  (This is exactly
    why callable fingerprints must not include ``id(...)`` — see
    ``repro.exec.cache._value_fingerprint``.)
    """
    return hashlib.blake2b(repr(key).encode("utf-8"), digest_size=20).hexdigest()


def text_digest(payload: bytes | str) -> str:
    """Digest used as the ETag of mutable store documents."""
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    return hashlib.blake2b(payload, digest_size=20).hexdigest()


def clear_digest_memo() -> None:
    """Drop every memoized array digest and reset the counters.

    Also forgets registered append bases (owners must re-register), so
    tests get a clean slate for both fast paths.
    """
    global _memo_hits, _memo_misses
    global _append_hits, _append_extended_bytes, _append_full_rehashes
    with _MEMO_LOCK:
        _MEMO.clear()
        _memo_hits = 0
        _memo_misses = 0
    with _APPEND_LOCK:
        _APPEND.clear()
        _append_hits = 0
        _append_extended_bytes = 0
        _append_full_rehashes = 0


def digest_memo_stats() -> dict:
    """``{"hits", "misses", "entries", "bytes"}`` of the array-digest memo."""
    with _MEMO_LOCK:
        return {
            "hits": _memo_hits,
            "misses": _memo_misses,
            "entries": len(_MEMO),
            "bytes": sum(entry[1] for entry in _MEMO.values()),
        }
