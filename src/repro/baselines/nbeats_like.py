"""N-BEATS baseline: thin toolkit wrapper around the DL substrate.

The paper benchmarks the open-source N-BEATS implementation with the
Table 3 defaults (``nb_blocks_per_stack=3``, ``hidden_layer_units=128``,
``train_percent=0.8``).  The reproduction reuses the doubly-residual
:class:`~repro.dl.forecaster.NBeatsLikeForecaster` with those defaults and
adds the toolkit-level behaviour: an internal 80/20 validation split used to
pick the look-back multiplier (N-BEATS searches over lookback = k * horizon).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon
from ..core.base import BaseForecaster, check_is_fitted
from ..dl.forecaster import NBeatsLikeForecaster
from ..metrics.errors import smape

__all__ = ["NBeatsBaseline"]


class NBeatsBaseline(BaseForecaster):
    """N-BEATS toolkit baseline (doubly-residual stacks, lookback search)."""

    def __init__(
        self,
        nb_blocks_per_stack: int = 3,
        hidden_layer_units: int = 128,
        train_percent: float = 0.8,
        lookback_multipliers: tuple[int, ...] = (2, 4),
        epochs: int = 60,
        horizon: int = 1,
        random_state: int | None = 0,
    ):
        self.nb_blocks_per_stack = nb_blocks_per_stack
        self.hidden_layer_units = hidden_layer_units
        self.train_percent = train_percent
        self.lookback_multipliers = lookback_multipliers
        self.epochs = epochs
        self.horizon = horizon
        self.random_state = random_state

    def _make_model(self, lookback: int) -> NBeatsLikeForecaster:
        return NBeatsLikeForecaster(
            lookback=lookback,
            horizon=int(self.horizon),
            n_blocks=int(self.nb_blocks_per_stack),
            hidden_units=int(self.hidden_layer_units),
            epochs=int(self.epochs),
            random_state=self.random_state,
        )

    def fit(self, X, y=None) -> "NBeatsBaseline":
        X = as_2d_array(X)
        horizon = check_horizon(self.horizon)

        n_train = int(len(X) * float(self.train_percent))
        n_train = max(min(n_train, len(X) - horizon), horizon + 4)
        train, validation = X[:n_train], X[n_train : n_train + horizon]

        best_model = None
        best_error = np.inf
        for multiplier in self.lookback_multipliers:
            lookback = max(4, int(multiplier) * horizon)
            if lookback >= n_train - horizon:
                continue
            candidate = self._make_model(lookback)
            try:
                candidate.fit(train)
                error = (
                    smape(validation, candidate.predict(len(validation)))
                    if len(validation)
                    else 0.0
                )
            except Exception:  # noqa: BLE001 - try the next configuration
                continue
            if error < best_error:
                best_error = error
                best_model = self._make_model(lookback)

        if best_model is None:
            best_model = self._make_model(max(4, 2 * horizon))
        best_model.fit(X)
        self.model_ = best_model
        self.n_series_ = X.shape[1]
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("model_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        return self.model_.predict(horizon)

    @property
    def name(self) -> str:
        return "NBeats"
