"""pmdarima-style baseline: seasonal auto-ARIMA with Table 3 defaults.

pmdarima's ``auto_arima`` searches (p, d, q) x (P, D, Q, m) orders; the
paper runs it with ``start_p=1, start_q=1, max_p=3, max_q=3, m=12,
seasonal=True, d=1, D=1``.  The reproduction composes the same structure
from this library's ARIMA substrate:

1. one round of seasonal differencing at period ``m`` (D=1),
2. the auto-order ARIMA search (p, q <= 3) on the seasonally differenced
   series with first differencing (d=1 behaviour handled by the order
   search), and
3. inversion of the seasonal difference when forecasting.

Its cost profile follows pmdarima (slow on long series because of the order
search) and its accuracy profile is strong on seasonal monthly-style data,
which is where the paper reports pmdarima ranking near the top.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon
from ..core.base import BaseForecaster, check_is_fitted
from ..forecasters.arima import AutoARIMAForecaster

__all__ = ["PmdarimaLike"]


class PmdarimaLike(BaseForecaster):
    """Seasonal auto-ARIMA (pmdarima-style defaults)."""

    def __init__(
        self,
        m: int = 12,
        max_p: int = 3,
        max_q: int = 3,
        seasonal: bool = True,
        D: int = 1,
        horizon: int = 1,
    ):
        self.m = m
        self.max_p = max_p
        self.max_q = max_q
        self.seasonal = seasonal
        self.D = D
        self.horizon = horizon

    def _fit_single(self, series: np.ndarray) -> dict:
        m = int(self.m)
        use_seasonal = bool(self.seasonal) and int(self.D) > 0 and len(series) > 3 * m

        if use_seasonal:
            seasonal_tail = series[-m:]
            differenced = series[m:] - series[:-m]
        else:
            seasonal_tail = None
            differenced = series

        arima = AutoARIMAForecaster(
            max_p=int(self.max_p), max_q=int(self.max_q), horizon=self.horizon
        )
        arima.fit(differenced.reshape(-1, 1))
        return {"arima": arima, "seasonal_tail": seasonal_tail, "m": m}

    def fit(self, X, y=None) -> "PmdarimaLike":
        X = as_2d_array(X)
        self.models_ = [self._fit_single(X[:, j]) for j in range(X.shape[1])]
        self.n_series_ = X.shape[1]
        return self

    def _predict_single(self, model: dict, horizon: int) -> np.ndarray:
        base_forecast = model["arima"].predict(horizon).ravel()
        if model["seasonal_tail"] is None:
            return base_forecast
        # Invert the seasonal difference: y[t] = diff[t] + y[t - m].
        m = model["m"]
        history = list(model["seasonal_tail"])
        forecasts = []
        for step in range(horizon):
            value = base_forecast[step] + history[step] if step < len(history) else (
                base_forecast[step] + forecasts[step - m]
            )
            forecasts.append(value)
        return np.asarray(forecasts)

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("models_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        columns = [self._predict_single(model, horizon) for model in self.models_]
        return np.column_stack(columns)

    @property
    def name(self) -> str:
        return "PMDArima"
