"""PyAF-style baseline: hierarchical signal decomposition forecaster.

PyAF (Python Automatic Forecasting) decomposes a signal into
``trend + cycle + AR(residual)`` components, trying a few options for each
component and keeping the combination with the best in-sample criterion.
The reproduction follows the same template:

* trend candidates: constant, linear, piecewise-linear (two segments);
* cycle candidates: none, or the best seasonal period found by spectral
  analysis (cycle estimated by per-phase means of the detrended signal);
* residual model: an AR model fitted on what is left.

The candidate combination with the lowest one-step in-sample MAPE wins —
mirroring PyAF's exhaustive component search and its failure mode observed
in the paper (occasional large errors when the cycle estimate locks onto a
spurious period, e.g. the 200-SMAPE entries of Table 4).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon
from ..core.base import BaseForecaster, check_is_fitted
from ..forecasters.arima import ARIMAForecaster
from ..stats.spectral import dominant_period
from ..stats.stattests import is_constant

__all__ = ["PyAFLike"]


class PyAFLike(BaseForecaster):
    """Trend + cycle + AR decomposition forecaster (PyAF-style)."""

    def __init__(self, ar_order: int = 4, horizon: int = 1):
        self.ar_order = ar_order
        self.horizon = horizon

    # -- component candidates ---------------------------------------------------
    def _trend_candidates(self, time_index: np.ndarray, series: np.ndarray) -> list[dict]:
        candidates = [{"kind": "constant", "params": (float(np.mean(series)),)}]
        slope, intercept = np.polyfit(time_index, series, 1)
        candidates.append({"kind": "linear", "params": (float(intercept), float(slope))})
        midpoint = len(series) // 2
        if midpoint > 4 and len(series) - midpoint > 4:
            slope1, intercept1 = np.polyfit(time_index[:midpoint], series[:midpoint], 1)
            slope2, intercept2 = np.polyfit(time_index[midpoint:], series[midpoint:], 1)
            candidates.append(
                {
                    "kind": "piecewise",
                    "params": (
                        float(intercept1),
                        float(slope1),
                        float(intercept2),
                        float(slope2),
                        midpoint,
                    ),
                }
            )
        return candidates

    def _trend_values(self, candidate: dict, time_index: np.ndarray) -> np.ndarray:
        kind, params = candidate["kind"], candidate["params"]
        if kind == "constant":
            return np.full(len(time_index), params[0])
        if kind == "linear":
            intercept, slope = params
            return intercept + slope * time_index
        intercept1, slope1, intercept2, slope2, midpoint = params
        values = np.where(
            time_index < midpoint,
            intercept1 + slope1 * time_index,
            intercept2 + slope2 * time_index,
        )
        return values

    def _cycle_candidates(self, detrended: np.ndarray) -> list[dict]:
        candidates = [{"period": 0, "profile": np.zeros(1)}]
        period = dominant_period(detrended, max_period=len(detrended) // 2)
        if period and period >= 2:
            profile = np.zeros(period)
            for phase in range(period):
                values = detrended[phase::period]
                profile[phase] = float(np.mean(values)) if len(values) else 0.0
            candidates.append({"period": period, "profile": profile})
        return candidates

    def _cycle_values(self, candidate: dict, start: int, length: int) -> np.ndarray:
        period = candidate["period"]
        if period == 0:
            return np.zeros(length)
        phases = (start + np.arange(length)) % period
        return candidate["profile"][phases]

    # -- fitting -----------------------------------------------------------------
    def _fit_single(self, series: np.ndarray) -> dict:
        n_samples = len(series)
        time_index = np.arange(n_samples, dtype=float)

        best: dict | None = None
        best_error = np.inf
        for trend in self._trend_candidates(time_index, series):
            trend_values = self._trend_values(trend, time_index)
            detrended = series - trend_values
            for cycle in self._cycle_candidates(detrended):
                cycle_values = self._cycle_values(cycle, 0, n_samples)
                residual = detrended - cycle_values
                fitted = trend_values + cycle_values
                denominator = np.clip(np.abs(series), 1.0, None)
                error = float(np.mean(np.abs(series - fitted) / denominator))
                if error < best_error:
                    best_error = error
                    best = {"trend": trend, "cycle": cycle, "residual": residual}

        assert best is not None  # at least the constant/no-cycle candidate exists
        residual = best["residual"]
        if len(residual) > 4 * int(self.ar_order) and not is_constant(residual):
            ar_model = ARIMAForecaster(p=int(self.ar_order), d=0, q=0, horizon=self.horizon)
            ar_model.fit(residual.reshape(-1, 1))
        else:
            ar_model = None
        return {
            "trend": best["trend"],
            "cycle": best["cycle"],
            "ar": ar_model,
            "n_samples": n_samples,
        }

    def fit(self, X, y=None) -> "PyAFLike":
        X = as_2d_array(X)
        self.models_ = [self._fit_single(X[:, j]) for j in range(X.shape[1])]
        self.n_series_ = X.shape[1]
        return self

    def _predict_single(self, model: dict, horizon: int) -> np.ndarray:
        start = model["n_samples"]
        future_index = np.arange(start, start + horizon, dtype=float)
        trend_values = self._trend_values(model["trend"], future_index)
        cycle_values = self._cycle_values(model["cycle"], start, horizon)
        residual_values = (
            model["ar"].predict(horizon).ravel() if model["ar"] is not None else np.zeros(horizon)
        )
        return trend_values + cycle_values + residual_values

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("models_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        columns = [self._predict_single(model, horizon) for model in self.models_]
        return np.column_stack(columns)

    @property
    def name(self) -> str:
        return "PyAF"
