"""AutoTS model-list baselines: WindowRegressor, GLS, RollingRegression, Motif, Component.

The paper runs Catlin's AutoTS five times, each restricted to a single
``model_list`` (Table 3), producing five "toolkits": WindowRegressor, GLS,
RollingRegressor, Motif and Component (ComponentAnalysis).  Each class below
re-implements the corresponding AutoTS model family with this library's
substrates, keeping the zero-conf defaults:

* ``WindowRegressorToolkit`` — regression on flattened look-back windows.
* ``GLSToolkit`` — generalized least squares on deterministic regressors
  (trend + seasonal dummies), with an AR(1)-whitened refit (the "generalized"
  part of GLS).
* ``RollingRegressorToolkit`` — regression on rolling summary statistics
  (means/mins/maxes over several windows) instead of raw lags.
* ``MotifToolkit`` — motif simulation: find the k historical windows most
  similar to the current one and average their continuations.
* ``ComponentToolkit`` — component analysis: decompose into trend, seasonal
  and remainder via moving averages, forecast each component separately.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon
from ..core.base import BaseForecaster, check_is_fitted
from ..forecasters.ets import DoubleExponentialSmoothing
from ..hybrid.window_regressor import WindowRegressor
from ..ml.linear import RidgeRegression
from ..stats.acf import acf
from ..stats.spectral import dominant_period

__all__ = [
    "WindowRegressorToolkit",
    "GLSToolkit",
    "RollingRegressorToolkit",
    "MotifToolkit",
    "ComponentToolkit",
]


class WindowRegressorToolkit(BaseForecaster):
    """AutoTS ``WindowRegressor``: ridge regression over look-back windows."""

    def __init__(self, window_size: int = 10, horizon: int = 1):
        self.window_size = window_size
        self.horizon = horizon

    def fit(self, X, y=None) -> "WindowRegressorToolkit":
        X = as_2d_array(X)
        self.model_ = WindowRegressor(
            regressor=RidgeRegression(alpha=1.0),
            lookback=int(self.window_size),
            horizon=int(self.horizon),
            strategy="recursive",
        )
        self.model_.fit(X)
        self.n_series_ = X.shape[1]
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("model_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        return self.model_.predict(horizon)

    @property
    def name(self) -> str:
        return "WindowRegressor"


class GLSToolkit(BaseForecaster):
    """AutoTS ``GLS``: trend + seasonal-dummy regression with AR(1) whitening."""

    def __init__(self, horizon: int = 1):
        self.horizon = horizon

    def _design(self, time_index: np.ndarray, period: int) -> np.ndarray:
        columns = [np.ones_like(time_index), time_index]
        if period >= 2:
            phases = (time_index.astype(int)) % period
            for phase in range(1, period):
                columns.append((phases == phase).astype(float))
        return np.column_stack(columns)

    def _fit_single(self, series: np.ndarray) -> dict:
        n_samples = len(series)
        time_index = np.arange(n_samples, dtype=float)
        period = dominant_period(series, max_period=min(24, n_samples // 3)) or 0

        design = self._design(time_index, period)
        coefficients, _, _, _ = np.linalg.lstsq(design, series, rcond=None)
        residuals = series - design @ coefficients

        # AR(1) whitening: estimate rho and refit on quasi-differenced data.
        rho = float(acf(residuals, nlags=1)[1]) if n_samples > 4 else 0.0
        rho = float(np.clip(rho, -0.95, 0.95))
        if abs(rho) > 0.05:
            whitened_y = series[1:] - rho * series[:-1]
            whitened_design = design[1:] - rho * design[:-1]
            coefficients, _, _, _ = np.linalg.lstsq(whitened_design, whitened_y, rcond=None)
        return {"coefficients": coefficients, "period": period, "n_samples": n_samples}

    def fit(self, X, y=None) -> "GLSToolkit":
        X = as_2d_array(X)
        self.models_ = [self._fit_single(X[:, j]) for j in range(X.shape[1])]
        self.n_series_ = X.shape[1]
        return self

    def _predict_single(self, model: dict, horizon: int) -> np.ndarray:
        start = model["n_samples"]
        future_index = np.arange(start, start + horizon, dtype=float)
        design = self._design(future_index, model["period"])
        expected_width = len(model["coefficients"])
        if design.shape[1] != expected_width:  # defensive: period mismatch
            design = design[:, :expected_width]
        return design @ model["coefficients"]

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("models_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        columns = [self._predict_single(model, horizon) for model in self.models_]
        return np.column_stack(columns)

    @property
    def name(self) -> str:
        return "GLS"


class RollingRegressorToolkit(BaseForecaster):
    """AutoTS ``RollingRegression``: ridge regression on rolling statistics."""

    def __init__(self, windows: tuple[int, ...] = (3, 7, 14), horizon: int = 1):
        self.windows = windows
        self.horizon = horizon

    def _features_at(self, series: np.ndarray, end: int) -> np.ndarray:
        """Rolling statistics of ``series[:end]`` (the feature row for time ``end``)."""
        values = []
        for window in self.windows:
            window = int(window)
            segment = series[max(0, end - window) : end]
            if len(segment) == 0:
                segment = series[:1]
            values.extend(
                [float(np.mean(segment)), float(np.min(segment)), float(np.max(segment))]
            )
        values.append(float(series[end - 1]))
        return np.asarray(values)

    def _fit_single(self, series: np.ndarray) -> dict:
        max_window = max(int(w) for w in self.windows)
        start = max_window + 1
        if len(series) <= start + 4:
            return {"model": None, "last_value": float(series[-1])}
        features = np.stack([self._features_at(series, end) for end in range(start, len(series))])
        targets = series[start:]
        model = RidgeRegression(alpha=1.0)
        model.fit(features, targets)
        return {"model": model, "series": series.copy()}

    def fit(self, X, y=None) -> "RollingRegressorToolkit":
        X = as_2d_array(X)
        self.models_ = [self._fit_single(X[:, j]) for j in range(X.shape[1])]
        self.n_series_ = X.shape[1]
        return self

    def _predict_single(self, model: dict, horizon: int) -> np.ndarray:
        if model["model"] is None:
            return np.full(horizon, model["last_value"])
        series = list(model["series"])
        forecasts = []
        for _ in range(horizon):
            features = self._features_at(np.asarray(series), len(series))
            prediction = float(np.asarray(model["model"].predict(features.reshape(1, -1))).ravel()[0])
            forecasts.append(prediction)
            series.append(prediction)
        return np.asarray(forecasts)

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("models_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        columns = [self._predict_single(model, horizon) for model in self.models_]
        return np.column_stack(columns)

    @property
    def name(self) -> str:
        return "RollingRegressor"


class MotifToolkit(BaseForecaster):
    """AutoTS ``MotifSimulation``: forecast from the continuations of similar windows."""

    def __init__(self, window_size: int = 10, n_motifs: int = 5, horizon: int = 1):
        self.window_size = window_size
        self.n_motifs = n_motifs
        self.horizon = horizon

    def _fit_single(self, series: np.ndarray) -> dict:
        return {"series": series.copy()}

    def fit(self, X, y=None) -> "MotifToolkit":
        X = as_2d_array(X)
        self.models_ = [self._fit_single(X[:, j]) for j in range(X.shape[1])]
        self.n_series_ = X.shape[1]
        return self

    def _predict_single(self, model: dict, horizon: int) -> np.ndarray:
        series = model["series"]
        window = int(min(self.window_size, max(2, len(series) // 4)))
        query = series[-window:]
        query_anchor = query[-1]

        candidates = []
        for start in range(len(series) - window - horizon + 1):
            segment = series[start : start + window]
            distance = float(np.mean((segment - segment[-1] - (query - query_anchor)) ** 2))
            candidates.append((distance, start))
        if not candidates:
            return np.full(horizon, float(series[-1]))
        candidates.sort(key=lambda item: item[0])
        k = max(1, min(int(self.n_motifs), len(candidates)))

        continuations = []
        for _, start in candidates[:k]:
            anchor = series[start + window - 1]
            continuation = series[start + window : start + window + horizon] - anchor
            continuations.append(continuation)
        return query_anchor + np.mean(continuations, axis=0)

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("models_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        columns = [self._predict_single(model, horizon) for model in self.models_]
        return np.column_stack(columns)

    @property
    def name(self) -> str:
        return "Motif"


class ComponentToolkit(BaseForecaster):
    """AutoTS ``ComponentAnalysis``: decompose, forecast components, recompose."""

    def __init__(self, horizon: int = 1):
        self.horizon = horizon

    def _fit_single(self, series: np.ndarray) -> dict:
        n_samples = len(series)
        period = dominant_period(series, max_period=n_samples // 3) or 0

        # Trend: centred moving average (falls back to the raw series).
        window = period if period >= 2 else max(3, n_samples // 10)
        kernel = np.ones(window) / window
        padded = np.concatenate([np.full(window // 2, series[0]), series, np.full(window - window // 2 - 1, series[-1])])
        trend = np.convolve(padded, kernel, mode="valid")[:n_samples]

        detrended = series - trend
        if period >= 2:
            profile = np.zeros(period)
            for phase in range(period):
                values = detrended[phase::period]
                profile[phase] = float(np.mean(values)) if len(values) else 0.0
        else:
            profile = np.zeros(1)

        trend_model = DoubleExponentialSmoothing(horizon=self.horizon)
        trend_model.fit(trend.reshape(-1, 1))
        return {
            "trend_model": trend_model,
            "profile": profile,
            "period": max(period, 1),
            "n_samples": n_samples,
        }

    def fit(self, X, y=None) -> "ComponentToolkit":
        X = as_2d_array(X)
        self.models_ = [self._fit_single(X[:, j]) for j in range(X.shape[1])]
        self.n_series_ = X.shape[1]
        return self

    def _predict_single(self, model: dict, horizon: int) -> np.ndarray:
        trend_forecast = model["trend_model"].predict(horizon).ravel()
        period = model["period"]
        phases = (model["n_samples"] + np.arange(horizon)) % period
        seasonal_forecast = model["profile"][phases] if period > 1 else np.zeros(horizon)
        return trend_forecast + seasonal_forecast

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("models_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        columns = [self._predict_single(model, horizon) for model in self.models_]
        return np.column_stack(columns)

    @property
    def name(self) -> str:
        return "Component"
