"""DeepAR-style baseline: global autoregressive neural forecaster.

DeepAR (Salinas et al. 2020) trains a single recurrent network across all
series of a data set on scaled autoregressive windows and forecasts by
unrolling the network one step at a time.  This baseline keeps the three
defining ingredients within the numpy substrate:

* a *global* model — one network trained on windows pooled from every series,
* per-series mean scaling of the windows (DeepAR's "scaling: True" default),
* autoregressive one-step decoding, with Monte-Carlo sample paths drawn from
  the estimated innovation noise (``num_parallel_samples`` paths averaged
  into the point forecast, mirroring the probabilistic output).

The network is a two-layer perceptron over the look-back window instead of
an LSTM, which preserves the training-cost profile (slow relative to the
statistical models) and the accuracy profile (strong on data sets with many
related series, weaker on short univariate sets) without a recurrent-network
implementation.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon
from ..core.base import BaseForecaster, check_is_fitted
from ..dl.network import FeedForwardNetwork

__all__ = ["DeepARLike"]


class DeepARLike(BaseForecaster):
    """Global scaled autoregressive neural forecaster (DeepAR-style)."""

    def __init__(
        self,
        context_length: int = 24,
        num_cells: int = 40,
        num_layers: int = 2,
        epochs: int = 60,
        learning_rate: float = 1e-3,
        num_parallel_samples: int = 20,
        horizon: int = 1,
        random_state: int | None = 0,
    ):
        self.context_length = context_length
        self.num_cells = num_cells
        self.num_layers = num_layers
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.num_parallel_samples = num_parallel_samples
        self.horizon = horizon
        self.random_state = random_state

    def fit(self, X, y=None) -> "DeepARLike":
        X = as_2d_array(X)
        check_horizon(self.horizon)
        n_samples, n_series = X.shape
        context = int(min(self.context_length, max(4, n_samples // 4)))

        # Per-series mean scaling (DeepAR divides each window by 1 + mean).
        self.scales_ = 1.0 + np.abs(X).mean(axis=0)
        scaled = X / self.scales_

        features = []
        targets = []
        for column in range(n_series):
            series = scaled[:, column]
            for start in range(n_samples - context):
                features.append(series[start : start + context])
                targets.append(series[start + context])
        features = np.asarray(features)
        targets = np.asarray(targets).reshape(-1, 1)

        hidden_layers = tuple([int(self.num_cells)] * int(self.num_layers))
        self.network_ = FeedForwardNetwork(
            layer_sizes=(context, *hidden_layers, 1),
            learning_rate=self.learning_rate,
            random_state=self.random_state,
        )
        self.network_.train(features, targets, epochs=int(self.epochs), batch_size=64)

        residuals = self.network_.forward(features).ravel() - targets.ravel()
        self.noise_std_ = float(np.std(residuals))
        self._context_used = context
        self._n_series = n_series
        self._last_windows = scaled[-context:].copy()
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("network_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        rng = np.random.default_rng(self.random_state)
        n_paths = max(1, int(self.num_parallel_samples))

        forecasts = np.zeros((horizon, self._n_series))
        for column in range(self._n_series):
            window = self._last_windows[:, column]
            paths = np.tile(window, (n_paths, 1))
            outputs = np.zeros((n_paths, horizon))
            for step in range(horizon):
                means = self.network_.forward(paths[:, -self._context_used :]).ravel()
                samples = means + rng.normal(0.0, self.noise_std_, n_paths)
                outputs[:, step] = samples
                paths = np.column_stack([paths[:, 1:], samples])
            forecasts[:, column] = outputs.mean(axis=0) * self.scales_[column]
        return forecasts

    @property
    def name(self) -> str:
        return "DeepAR"
