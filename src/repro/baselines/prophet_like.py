"""Prophet-style baseline: additive trend + Fourier seasonality model.

Facebook Prophet fits a generalized additive model ``y = g(t) + s(t) + e``
with a piecewise-linear trend ``g`` and Fourier-series seasonalities ``s``
(Taylor & Letham 2018).  This baseline reproduces that decomposition with

* a piecewise-linear trend with ``n_changepoints`` evenly spaced changepoints
  over the first ``changepoint_range`` of the data (Table 3 defaults: 25
  changepoints over 80% of history) fitted with a small ridge penalty on the
  slope changes, and
* Fourier features for the candidate seasonal periods (weekly/monthly/yearly
  analogues, chosen from the dominant spectral period) fitted jointly with
  the trend by ridge regression.

Like Prophet it is fast, fully automatic and strongest on business-like
series with stable trend and seasonality; it degrades on bursty or
random-walk data — the behaviour the paper observes (Prophet ranks last on
the univariate suite while being among the fastest).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon
from ..core.base import BaseForecaster, check_is_fitted
from ..stats.spectral import spectral_peaks

__all__ = ["ProphetLike"]


class ProphetLike(BaseForecaster):
    """Additive trend + Fourier seasonality forecaster (Prophet-style)."""

    def __init__(
        self,
        n_changepoints: int = 25,
        changepoint_range: float = 0.8,
        changepoint_prior_scale: float = 0.05,
        seasonality_prior_scale: float = 10.0,
        fourier_order: int = 5,
        horizon: int = 1,
    ):
        self.n_changepoints = n_changepoints
        self.changepoint_range = changepoint_range
        self.changepoint_prior_scale = changepoint_prior_scale
        self.seasonality_prior_scale = seasonality_prior_scale
        self.fourier_order = fourier_order
        self.horizon = horizon

    # -- design matrices -------------------------------------------------------
    def _changepoints(self, n_samples: int) -> np.ndarray:
        horizon_end = int(self.changepoint_range * n_samples)
        n_changepoints = min(int(self.n_changepoints), max(horizon_end - 1, 0))
        if n_changepoints <= 0:
            return np.zeros(0)
        return np.linspace(0, horizon_end, n_changepoints + 2)[1:-1]

    def _trend_design(self, time_index: np.ndarray, changepoints: np.ndarray) -> np.ndarray:
        columns = [np.ones_like(time_index), time_index]
        for changepoint in changepoints:
            columns.append(np.clip(time_index - changepoint, 0.0, None))
        return np.column_stack(columns)

    def _seasonal_design(self, time_index: np.ndarray, periods: list[int]) -> np.ndarray:
        columns = []
        for period in periods:
            for order in range(1, int(self.fourier_order) + 1):
                angle = 2.0 * np.pi * order * time_index / period
                columns.append(np.sin(angle))
                columns.append(np.cos(angle))
        if not columns:
            return np.zeros((len(time_index), 0))
        return np.column_stack(columns)

    def _fit_single(self, series: np.ndarray) -> dict:
        n_samples = len(series)
        time_index = np.arange(n_samples, dtype=float)
        changepoints = self._changepoints(n_samples)
        periods = spectral_peaks(series, n_peaks=2, max_period=n_samples // 2)
        periods = [period for period in periods if period >= 3]

        trend_design = self._trend_design(time_index, changepoints)
        seasonal_design = self._seasonal_design(time_index, periods)
        design = np.hstack([trend_design, seasonal_design])

        # Ridge penalties: weak on base trend, strong on changepoint deltas
        # (Prophet's Laplace prior analogue), weak on seasonal terms.
        penalties = np.zeros(design.shape[1])
        penalties[2 : trend_design.shape[1]] = 1.0 / max(self.changepoint_prior_scale, 1e-6)
        penalties[trend_design.shape[1] :] = 1.0 / max(self.seasonality_prior_scale, 1e-6)
        gram = design.T @ design + np.diag(penalties)
        moment = design.T @ series
        try:
            coefficients = np.linalg.solve(gram, moment)
        except np.linalg.LinAlgError:
            coefficients, _, _, _ = np.linalg.lstsq(gram, moment, rcond=None)

        return {
            "coefficients": coefficients,
            "changepoints": changepoints,
            "periods": periods,
            "n_samples": n_samples,
        }

    def fit(self, X, y=None) -> "ProphetLike":
        X = as_2d_array(X)
        self.models_ = [self._fit_single(X[:, j]) for j in range(X.shape[1])]
        self.n_series_ = X.shape[1]
        return self

    def _predict_single(self, model: dict, horizon: int) -> np.ndarray:
        future_index = np.arange(
            model["n_samples"], model["n_samples"] + horizon, dtype=float
        )
        trend_design = self._trend_design(future_index, model["changepoints"])
        seasonal_design = self._seasonal_design(future_index, model["periods"])
        design = np.hstack([trend_design, seasonal_design])
        return design @ model["coefficients"]

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("models_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        columns = [self._predict_single(model, horizon) for model in self.models_]
        return np.column_stack(columns)

    @property
    def name(self) -> str:
        return "Prophet"
