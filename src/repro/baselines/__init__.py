"""Re-implementations of the ten SOTA forecasting toolkits used in section 5.

The original toolkits (GluonTS DeepAR, Facebook Prophet, pmdarima, PyAF,
N-BEATS, and the five AutoTS model-list configurations) are not available in
this offline environment, so each baseline here re-implements the toolkit's
*core algorithmic idea* with the substrates of this library, keeps the
zero-conf defaults of Table 3, and exposes the same ``fit``/``predict``
forecaster API so the benchmark harness can swap them in and out freely.
DESIGN.md documents each substitution.
"""

from .autots_family import (
    ComponentToolkit,
    GLSToolkit,
    MotifToolkit,
    RollingRegressorToolkit,
    WindowRegressorToolkit,
)
from .deepar_like import DeepARLike
from .nbeats_like import NBeatsBaseline
from .pmdarima_like import PmdarimaLike
from .prophet_like import ProphetLike
from .pyaf_like import PyAFLike

__all__ = [
    "ProphetLike",
    "DeepARLike",
    "PmdarimaLike",
    "NBeatsBaseline",
    "PyAFLike",
    "WindowRegressorToolkit",
    "GLSToolkit",
    "RollingRegressorToolkit",
    "MotifToolkit",
    "ComponentToolkit",
]

#: Toolkit display names as used in the paper's tables/figures, mapped to classes.
SOTA_TOOLKITS = {
    "PMDArima": PmdarimaLike,
    "DeepAR": DeepARLike,
    "WindowRegressor": WindowRegressorToolkit,
    "PyAF": PyAFLike,
    "GLS": GLSToolkit,
    "RollingRegressor": RollingRegressorToolkit,
    "NBeats": NBeatsBaseline,
    "Motif": MotifToolkit,
    "Component": ComponentToolkit,
    "Prophet": ProphetLike,
}
