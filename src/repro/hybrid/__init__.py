"""Statistical-ML hybrid and window-based ML forecasters.

These are the "Stats-ML Hybrid Models" and "ML Models" boxes of the paper's
architecture (figure 2): IID regressors wrapped behind look-back window
transforms (``WindowRegressor`` and its ``WindowRandomForest`` /
``WindowSVR`` instantiations), the AutoEnsembler family built on the flatten
transforms, and the multivariate trend-to-residual forecaster
(``MT2RForecaster``).
"""

from .auto_ensembler import (
    DifferenceFlattenAutoEnsembler,
    FlattenAutoEnsembler,
    LocalizedFlattenAutoEnsembler,
)
from .mt2r import MT2RForecaster
from .window_regressor import WindowRandomForestForecaster, WindowRegressor, WindowSVRForecaster

__all__ = [
    "WindowRegressor",
    "WindowRandomForestForecaster",
    "WindowSVRForecaster",
    "FlattenAutoEnsembler",
    "DifferenceFlattenAutoEnsembler",
    "LocalizedFlattenAutoEnsembler",
    "MT2RForecaster",
]
