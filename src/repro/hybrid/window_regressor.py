"""Window-based ML forecasters.

"Generally, ML based approaches perform transformations on time series data
and then model time series forecasting problem as an IID problem" (paper
section 3).  :class:`WindowRegressor` frames the series into look-back
windows, fits any :class:`~repro.core.base.BaseRegressor` on them and
forecasts either directly (multi-output regression over the horizon) or
recursively (one step at a time, feeding predictions back into the window).

``WindowRandomForest`` and ``WindowSVR`` — two of the ten pipelines in the
paper's inventory (figure 14/15) — are thin subclasses with the matching
default regressor.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon, check_positive_int
from ..core.base import BaseForecaster, BaseRegressor, check_is_fitted, clone
from ..exceptions import InvalidParameterError
from ..ml.forest import RandomForestRegressor
from ..ml.svr import SVR
from ..transforms.window import make_supervised_windows

__all__ = ["WindowRegressor", "WindowRandomForestForecaster", "WindowSVRForecaster"]

_STRATEGIES = ("recursive", "direct")


class WindowRegressor(BaseForecaster):
    """Forecaster that wraps an IID regressor behind a look-back window.

    Parameters
    ----------
    regressor:
        Any estimator with ``fit(X, y)`` / ``predict(X)``.  One clone is
        trained per output series (and per horizon step under the direct
        strategy when the regressor does not support multi-output targets).
    lookback:
        Look-back window length.  The AutoAI-TS orchestrator sets this from
        the automatic look-back discovery; the default of 8 matches the
        paper's fallback value.
    strategy:
        ``"recursive"`` feeds one-step predictions back into the window;
        ``"direct"`` trains a multi-output model mapping a window to the full
        horizon at once.
    """

    def __init__(
        self,
        regressor: BaseRegressor | None = None,
        lookback: int = 8,
        horizon: int = 1,
        strategy: str = "recursive",
    ):
        self.regressor = regressor
        self.lookback = lookback
        self.horizon = horizon
        self.strategy = strategy

    def _effective_lookback(self, n_samples: int, horizon: int) -> int:
        lookback = check_positive_int(self.lookback, "lookback")
        # Leave room for at least a handful of training windows.
        budget = n_samples - horizon - 3
        return int(max(1, min(lookback, max(budget, 1))))

    def fit(self, X, y=None) -> "WindowRegressor":
        if self.strategy not in _STRATEGIES:
            raise InvalidParameterError(
                f"strategy must be one of {_STRATEGIES}, got {self.strategy!r}."
            )
        frame_input = getattr(X, "is_timeseries_frame", False)
        if not frame_input:
            X = as_2d_array(X)
        n_samples, n_series = X.shape
        horizon = check_horizon(self.horizon)
        lookback = self._effective_lookback(n_samples, horizon if self.strategy == "direct" else 1)

        base = self.regressor if self.regressor is not None else RandomForestRegressor()
        self.models_: list[BaseRegressor] = []
        target_horizon = horizon if self.strategy == "direct" else 1

        if frame_input and hasattr(base, "partial_fit"):
            # Out-of-core path: the framer streams supervised-window
            # blocks straight off the frame's chunks and each per-column
            # model folds them in via partial_fit — the full lag tensor
            # never exists.  Identical block sequence → bit-identical
            # coefficients, so two out-of-core runs (or an in-memory run
            # on the same frame) converge on the same model.
            from ..frame.framer import ChunkedWindowFramer

            framer = ChunkedWindowFramer(X, lookback, target_horizon)
            self.models_ = [clone(base) for _ in range(n_series)]
            for features, block_targets in framer.blocks():
                block_targets = np.asarray(block_targets).reshape(
                    len(features), target_horizon, n_series
                )
                for column, model in enumerate(self.models_):
                    targets = np.ascontiguousarray(block_targets[:, :, column])
                    if target_horizon == 1:
                        targets = targets.ravel()
                    model.partial_fit(features, targets)
        else:
            # The lag matrix is identical for every output series, so it is
            # framed once (a vectorized sliding_window_view inside; frames
            # delegate to the streaming framer) with the all-series
            # targets; each per-column model then trains on its own slice
            # of the target block instead of re-framing the series.
            features, all_targets = make_supervised_windows(X, lookback, target_horizon)
            all_targets = np.asarray(all_targets).reshape(
                len(features), target_horizon, n_series
            )
            for column in range(n_series):
                targets = np.ascontiguousarray(all_targets[:, :, column])
                if target_horizon == 1:
                    targets = targets.ravel()
                model = clone(base)
                model.fit(features, targets)
                self.models_.append(model)

        self._lookback_used = lookback
        self._n_series = n_series
        # Context for update(): the trailing rows that participate in
        # windows overlapping future arrivals.  With exactly
        # ``lookback + target_horizon - 1`` retained rows, appending Δ new
        # rows frames to exactly the Δ supervised windows a cold refit
        # would add — no window is ever partial_fit twice.
        context = min(n_samples, lookback + target_horizon - 1)
        if frame_input:
            self._tail_rows_ = X.gather(n_samples - context, n_samples)
            self._last_window = X.gather(n_samples - lookback, n_samples)
        else:
            self._tail_rows_ = X[-context:].copy() if context else X[:0].copy()
            self._last_window = X[-lookback:].copy()
        return self

    @property
    def supports_incremental_update(self) -> bool:
        """True when the wrapped regressor can fold in new windows.

        Checked on the *template* regressor so schedulers can ask before
        fitting; per-column clones share the capability.
        """
        base = self.regressor if self.regressor is not None else RandomForestRegressor()
        return hasattr(base, "partial_fit")

    def update(self, X_new, X_full=None) -> "WindowRegressor":
        """Fold the Δ new supervised windows into each per-column model.

        Only the windows that end inside ``X_new`` are framed (from the
        retained tail context plus the new rows) and passed to
        ``partial_fit`` — O(Δ · lookback) work.  Parity with a cold refit
        is the regressor's own partial-fit contract: for
        :class:`~repro.ml.linear.StreamingRidge` the accumulated moments
        are algebraically those of a one-shot fit, equal up to float
        summation order (documented there).  Regressors without
        ``partial_fit`` fall back to the base full-refit path.
        """
        check_is_fitted(self, ("models_",))
        if not all(hasattr(model, "partial_fit") for model in self.models_):
            return super().update(X_new, X_full=X_full)
        X_new = as_2d_array(X_new, name="X_new")
        if X_new.shape[1] != self._n_series:
            raise InvalidParameterError(
                f"update block has {X_new.shape[1]} series, the fitted model "
                f"has {self._n_series}."
            )
        target_horizon = int(self.horizon) if self.strategy == "direct" else 1
        lookback = self._lookback_used
        rows = np.vstack([np.asarray(self._tail_rows_, dtype=float), X_new])
        n_windows = len(rows) - lookback - target_horizon + 1
        if n_windows > 0:
            features, all_targets = make_supervised_windows(rows, lookback, target_horizon)
            all_targets = np.asarray(all_targets).reshape(
                len(features), target_horizon, self._n_series
            )
            for column, model in enumerate(self.models_):
                targets = np.ascontiguousarray(all_targets[:, :, column])
                if target_horizon == 1:
                    targets = targets.ravel()
                model.partial_fit(features, targets)
        context = lookback + target_horizon - 1
        self._tail_rows_ = rows[-context:].copy() if context else rows[:0].copy()
        self._last_window = rows[-lookback:].copy()
        return self

    def _predict_recursive(self, horizon: int) -> np.ndarray:
        window = self._last_window.copy()
        forecasts = np.empty((horizon, self._n_series))
        for step in range(horizon):
            features = window.reshape(1, -1)
            for column, model in enumerate(self.models_):
                prediction = np.asarray(model.predict(features), dtype=float).ravel()
                forecasts[step, column] = prediction[0]
            window = np.vstack([window[1:], forecasts[step]])
        return forecasts

    def _predict_direct(self, horizon: int) -> np.ndarray:
        features = self._last_window.reshape(1, -1)
        trained_horizon = int(self.horizon)
        blocks: list[np.ndarray] = []
        window = self._last_window.copy()
        produced = 0
        while produced < horizon:
            features = window.reshape(1, -1)
            block = np.empty((trained_horizon, self._n_series))
            for column, model in enumerate(self.models_):
                prediction = np.asarray(model.predict(features), dtype=float).ravel()
                block[:, column] = prediction[:trained_horizon]
            blocks.append(block)
            produced += trained_horizon
            window = np.vstack([window, block])[-self._lookback_used :]
        return np.vstack(blocks)[:horizon]

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("models_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        if self.strategy == "direct":
            return self._predict_direct(horizon)
        return self._predict_recursive(horizon)

    @property
    def name(self) -> str:
        inner = type(self.regressor).__name__ if self.regressor is not None else "RandomForest"
        return f"Window{inner}"


class WindowRandomForestForecaster(WindowRegressor):
    """``WindowRandomForest`` pipeline: random forest over look-back windows."""

    def __init__(
        self,
        lookback: int = 8,
        horizon: int = 1,
        n_estimators: int = 50,
        max_depth: int | None = 10,
        random_state: int | None = 0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.random_state = random_state
        super().__init__(
            regressor=RandomForestRegressor(
                n_estimators=n_estimators, max_depth=max_depth, random_state=random_state
            ),
            lookback=lookback,
            horizon=horizon,
            strategy="recursive",
        )

    @classmethod
    def _get_param_names(cls):
        return ("lookback", "horizon", "n_estimators", "max_depth", "random_state")

    @property
    def name(self) -> str:
        return "WindowRandomForest"


class WindowSVRForecaster(WindowRegressor):
    """``WindowSVR`` pipeline: support vector regression over look-back windows."""

    def __init__(
        self,
        lookback: int = 8,
        horizon: int = 1,
        C: float = 1.0,
        epsilon: float = 0.1,
        kernel: str = "rbf",
    ):
        self.C = C
        self.epsilon = epsilon
        self.kernel = kernel
        super().__init__(
            regressor=SVR(kernel=kernel, C=C, epsilon=epsilon),
            lookback=lookback,
            horizon=horizon,
            strategy="recursive",
        )

    @classmethod
    def _get_param_names(cls):
        return ("lookback", "horizon", "C", "epsilon", "kernel")

    @property
    def name(self) -> str:
        return "WindowSVR"
