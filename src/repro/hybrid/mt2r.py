"""MT2RForecaster: multivariate trend-to-residual forecaster.

One of the ten AutoAI-TS pipelines (figure 14/15).  The model decomposes
each series into a smooth deterministic trend plus a stochastic residual:

1. a low-order polynomial trend is fitted to each series against time;
2. the de-trended residuals of *all* series are modelled jointly with a
   vector autoregression (lagged residuals of every series predict every
   series), which is what makes the model genuinely multivariate;
3. forecasts extrapolate the trend and add the VAR residual forecast.

This captures the same niche as IBM's MT2RForecaster: a fast, robust
multivariate model that behaves well on trending data where window-based ML
models struggle.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon, check_positive_int
from ..core.base import BaseForecaster, check_is_fitted
from ..exceptions import InvalidParameterError
from ..stats.stattests import is_constant

__all__ = ["MT2RForecaster"]


class MT2RForecaster(BaseForecaster):
    """Polynomial trend plus vector-autoregressive residual forecaster."""

    def __init__(
        self,
        trend_degree: int = 1,
        residual_lags: int = 4,
        ridge: float = 1e-3,
        horizon: int = 1,
    ):
        self.trend_degree = trend_degree
        self.residual_lags = residual_lags
        self.ridge = ridge
        self.horizon = horizon

    def fit(self, X, y=None) -> "MT2RForecaster":
        if self.trend_degree < 0:
            raise InvalidParameterError("trend_degree must be >= 0.")
        check_positive_int(self.residual_lags, "residual_lags")

        X = as_2d_array(X)
        n_samples, n_series = X.shape
        degree = int(min(self.trend_degree, max(n_samples - 2, 0)))

        # -- trend stage -----------------------------------------------------
        time_index = np.arange(n_samples, dtype=float)
        self._time_scale = max(float(n_samples - 1), 1.0)
        scaled_time = time_index / self._time_scale
        design = np.vander(scaled_time, degree + 1, increasing=True)
        coefficients, _, _, _ = np.linalg.lstsq(design, X, rcond=None)
        self.trend_coefficients_ = coefficients
        trend = design @ coefficients
        residuals = X - trend

        # -- residual VAR stage ------------------------------------------------
        lags = int(min(self.residual_lags, max((n_samples - 1) // 2, 1)))
        self._lags_used = lags
        usable = n_samples - lags
        if usable < max(2 * lags, 4) or all(
            is_constant(residuals[:, j]) for j in range(n_series)
        ):
            self.var_coefficients_ = None
        else:
            rows = []
            targets = []
            for t in range(lags, n_samples):
                rows.append(residuals[t - lags : t][::-1].ravel())
                targets.append(residuals[t])
            features = np.asarray(rows)
            targets = np.asarray(targets)
            gram = features.T @ features + self.ridge * np.eye(features.shape[1])
            moment = features.T @ targets
            try:
                self.var_coefficients_ = np.linalg.solve(gram, moment)
            except np.linalg.LinAlgError:
                self.var_coefficients_, _, _, _ = np.linalg.lstsq(gram, moment, rcond=None)

        self._n_samples = n_samples
        self._n_series = n_series
        self._residual_tail = residuals[-lags:].copy()
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("trend_coefficients_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)

        # Trend extrapolation.
        future_time = (
            np.arange(self._n_samples, self._n_samples + horizon, dtype=float)
            / self._time_scale
        )
        degree = self.trend_coefficients_.shape[0] - 1
        future_design = np.vander(future_time, degree + 1, increasing=True)
        trend_forecast = future_design @ self.trend_coefficients_

        # Residual VAR extrapolation.
        residual_forecast = np.zeros((horizon, self._n_series))
        if self.var_coefficients_ is not None:
            tail = self._residual_tail.copy()
            for step in range(horizon):
                features = tail[::-1].ravel()
                prediction = features @ self.var_coefficients_
                residual_forecast[step] = prediction
                tail = np.vstack([tail[1:], prediction])

        return trend_forecast + residual_forecast

    @property
    def name(self) -> str:
        return "MT2RForecaster"
