"""AutoEnsembler pipelines built on the flatten transforms.

Three of the paper's ten pipelines are ensembles over flattened look-back
windows (figure 14/15): ``FlattenAutoEnsembler (log)``,
``DifferenceFlattenAutoEnsembler (log)`` and
``LocalizedFlattenAutoEnsembler``.  Each one

1. optionally applies a stateless log transform (handled by the surrounding
   :class:`~repro.core.pipeline.ForecastingPipeline`),
2. applies its flatten variant (plain, differenced, or localized windows),
3. fits a small pool of heterogeneous regressors on the windowed problem,
4. scores the pool on the most recent validation tail, and
5. forecasts with a performance-weighted combination of the pool members
   (the "auto" part: the ensemble composition adapts to the data set).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon, check_positive_int
from ..core.base import BaseForecaster, BaseRegressor, check_is_fitted, clone
from ..ml.boosting import GradientBoostingRegressor
from ..ml.forest import RandomForestRegressor
from ..ml.linear import RidgeRegression
from ..transforms.window import make_supervised_windows

__all__ = [
    "FlattenAutoEnsembler",
    "DifferenceFlattenAutoEnsembler",
    "LocalizedFlattenAutoEnsembler",
]


def _default_pool() -> list[BaseRegressor]:
    """The heterogeneous regressor pool behind the auto-ensembles."""
    return [
        RidgeRegression(alpha=1.0),
        RandomForestRegressor(n_estimators=30, max_depth=8, random_state=0),
        GradientBoostingRegressor(n_estimators=60, max_depth=3, random_state=0),
    ]


class FlattenAutoEnsembler(BaseForecaster):
    """Ensemble of regressors over flattened (raw) look-back windows."""

    #: how the window features are expressed; overridden by subclasses.
    _mode = "flatten"

    def __init__(
        self,
        lookback: int = 8,
        horizon: int = 1,
        regressors: list[BaseRegressor] | None = None,
        validation_fraction: float = 0.2,
    ):
        self.lookback = lookback
        self.horizon = horizon
        self.regressors = regressors
        self.validation_fraction = validation_fraction

    # -- feature construction ------------------------------------------------
    def _prepare_series(self, X: np.ndarray) -> np.ndarray:
        """Series the windows are built from (differenced for the Difference variant)."""
        if self._mode == "difference":
            return np.diff(X, axis=0)
        return X

    def _window_features(self, window: np.ndarray) -> np.ndarray:
        """Convert one look-back window (lookback, n_series) to a feature row."""
        if self._mode == "localized":
            anchored = window - window[-1:]
            return anchored.reshape(1, -1)
        return window.reshape(1, -1)

    def _build_training_set(
        self, series: np.ndarray, lookback: int, column: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        features, targets = make_supervised_windows(
            series, lookback, 1, target_column=column
        )
        if self._mode == "localized":
            n_windows = features.shape[0]
            windows = features.reshape(n_windows, lookback, series.shape[1])
            anchors = windows[:, -1, column]
            windows = windows - windows[:, -1:, :]
            features = windows.reshape(n_windows, lookback * series.shape[1])
            targets = targets - anchors
            return features, targets, anchors
        return features, targets, np.zeros(features.shape[0])

    # -- fitting ----------------------------------------------------------------
    def fit(self, X, y=None) -> "FlattenAutoEnsembler":
        X = as_2d_array(X)
        check_horizon(self.horizon)
        lookback = check_positive_int(self.lookback, "lookback")

        prepared = self._prepare_series(X)
        max_lookback = max(1, len(prepared) - 4)
        lookback = min(lookback, max_lookback)

        pool_template = self.regressors if self.regressors is not None else _default_pool()

        self.column_models_: list[list[BaseRegressor]] = []
        self.column_weights_: list[np.ndarray] = []
        for column in range(X.shape[1]):
            features, targets, _ = self._build_training_set(prepared, lookback, column)
            n_windows = len(features)
            n_validation = max(1, int(round(self.validation_fraction * n_windows)))
            n_validation = min(n_validation, n_windows - 1) if n_windows > 1 else 0

            models: list[BaseRegressor] = []
            errors: list[float] = []
            for template in pool_template:
                model = clone(template)
                if n_validation:
                    model.fit(features[:-n_validation], targets[:-n_validation])
                    predictions = np.asarray(
                        model.predict(features[-n_validation:]), dtype=float
                    ).ravel()
                    error = float(
                        np.mean(np.abs(predictions - np.asarray(targets[-n_validation:]).ravel()))
                    )
                else:
                    model.fit(features, targets)
                    error = 1.0
                # Refit on all windows so the deployed member uses every sample.
                model = clone(template)
                model.fit(features, targets)
                models.append(model)
                errors.append(error)

            errors_array = np.asarray(errors, dtype=float)
            # Inverse-error weights; guard against all-zero errors.
            with np.errstate(divide="ignore"):
                weights = 1.0 / np.clip(errors_array, 1e-12, None)
            weights = weights / weights.sum()
            self.column_models_.append(models)
            self.column_weights_.append(weights)

        self._lookback_used = lookback
        self._n_series = X.shape[1]
        self._last_original = X[-1].copy()
        self._last_window_prepared = prepared[-lookback:].copy()
        return self

    # -- forecasting -----------------------------------------------------------
    def _predict_one_step(self, window: np.ndarray) -> np.ndarray:
        """One-step-ahead prediction for every series from a prepared window."""
        step = np.empty(self._n_series)
        for column in range(self._n_series):
            if self._mode == "localized":
                features = (window - window[-1:]).reshape(1, -1)
                anchor = window[-1, column]
            else:
                features = window.reshape(1, -1)
                anchor = 0.0
            members = self.column_models_[column]
            weights = self.column_weights_[column]
            combined = 0.0
            for weight, model in zip(weights, members):
                prediction = np.asarray(model.predict(features), dtype=float).ravel()[0]
                combined += weight * prediction
            step[column] = combined + anchor
        return step

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("column_models_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)

        window = self._last_window_prepared.copy()
        prepared_forecasts = np.empty((horizon, self._n_series))
        for step in range(horizon):
            prepared_forecasts[step] = self._predict_one_step(window)
            window = np.vstack([window[1:], prepared_forecasts[step]])

        if self._mode == "difference":
            # Integrate the differenced forecasts from the last observed level.
            return np.cumsum(prepared_forecasts, axis=0) + self._last_original
        return prepared_forecasts

    @property
    def name(self) -> str:
        return "FlattenAutoEnsembler"


class DifferenceFlattenAutoEnsembler(FlattenAutoEnsembler):
    """AutoEnsembler over windows of first differences (integrated forecasts)."""

    _mode = "difference"

    @property
    def name(self) -> str:
        return "DifferenceFlattenAutoEnsembler"


class LocalizedFlattenAutoEnsembler(FlattenAutoEnsembler):
    """AutoEnsembler over level-anchored (localized) windows."""

    _mode = "localized"

    @property
    def name(self) -> str:
        return "LocalizedFlattenAutoEnsembler"
