"""Automatic look-back window discovery (paper section 4.1).

The mechanism combines a *timestamp index assessment* (observation frequency
→ candidate seasonal periods, Table 1) with a *value index assessment*
(zero-crossing spacing and spectral analysis), sanity-filters the candidate
windows, and ranks them with an influence vector built from simple models
(linear-regression F-test, mutual information, random-forest error) on
randomly sampled windows.  Multivariate inputs are handled by running the
univariate discovery per series and combining the preferred values under the
``max_look_back`` budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_2d_array
from ..stats.linear_model import f_test_regression
from ..stats.mutual_info import mutual_information
from ..stats.spectral import dominant_period, spectral_peaks
from ..stats.stattests import is_constant, mean_crossing_period
from ..timeutils.frequency import Frequency, infer_frequency
from ..timeutils.seasonality import candidate_seasonal_periods
from ..ml.forest import RandomForestRegressor

__all__ = ["LookbackDiscovery", "LookbackResult", "DEFAULT_LOOKBACK"]

#: "If no value is found then the default values passed to the function is
#: returned (we use 8 as default value)."
DEFAULT_LOOKBACK = 8

#: "we randomly sample nearly 800 windows"
_INFLUENCE_SAMPLE_SIZE = 800


@dataclass
class LookbackResult:
    """Outcome of the look-back discovery for one data set.

    Attributes
    ----------
    selected:
        The final recommended look-back window length.
    candidates:
        All surviving candidate windows, best first.
    per_series:
        For multivariate data, the preferred window of each series.
    sources:
        Mapping from candidate value to how it was discovered
        (``"seasonal"``, ``"zero_crossing"``, ``"spectral"`` or ``"default"``).
    """

    selected: int
    candidates: list[int] = field(default_factory=list)
    per_series: list[int] = field(default_factory=list)
    sources: dict[int, str] = field(default_factory=dict)


class LookbackDiscovery:
    """Automatic look-back window length discovery.

    Parameters
    ----------
    max_look_back:
        Optional user budget; candidate windows above it are discarded and
        the multivariate combination caps windows so that
        ``window * n_series <= max_look_back``.
    default:
        Value returned when no candidate survives the sanity checks.
    influence_sample_size:
        Number of windows sampled when building the influence vector.
    multivariate_mode:
        ``"cap"`` (option 1 in the paper: cap violating values) or
        ``"drop"`` (option 2: ignore violating values).
    """

    def __init__(
        self,
        max_look_back: int | None = None,
        default: int = DEFAULT_LOOKBACK,
        influence_sample_size: int = _INFLUENCE_SAMPLE_SIZE,
        multivariate_mode: str = "cap",
        random_state: int | None = 0,
    ):
        self.max_look_back = max_look_back
        self.default = default
        self.influence_sample_size = influence_sample_size
        self.multivariate_mode = multivariate_mode
        self.random_state = random_state

    # -- candidate generation ------------------------------------------------
    def _timestamp_candidates(self, timestamps, series_length: int) -> list[int]:
        frequency = infer_frequency(timestamps)
        if frequency is Frequency.UNKNOWN:
            return []
        return candidate_seasonal_periods(frequency, series_length=series_length)

    def _value_candidates(
        self, series: np.ndarray, seasonal_periods: list[int]
    ) -> dict[int, str]:
        candidates: dict[int, str] = {}

        crossing = mean_crossing_period(series)
        if crossing is not None:
            value = int(round(crossing))
            if value > 1:
                candidates.setdefault(value, "zero_crossing")

        # One spectral candidate per seasonal period (the period bounds the
        # search), plus an unbounded spectral candidate when no timestamp
        # information is available.
        search_bounds = seasonal_periods if seasonal_periods else [len(series) // 2]
        for bound in search_bounds:
            period = dominant_period(series, max_period=int(bound))
            if period is not None and period > 1:
                candidates.setdefault(period, "spectral")
        # A few secondary spectral peaks bounded so a window repeats at least
        # three times in the series — these catch short seasonalities (e.g. a
        # daily cycle in hourly data) that the dominant peak can mask.
        for period in spectral_peaks(series, n_peaks=3, max_period=len(series) // 3):
            candidates.setdefault(period, "spectral")
        return candidates

    # -- sanity checks ---------------------------------------------------------
    def _sanity_filter(self, candidates: dict[int, str], series_length: int) -> dict[int, str]:
        filtered: dict[int, str] = {}
        for value, source in candidates.items():
            if value in (0, 1):
                continue
            if value > series_length:
                continue
            if self.max_look_back is not None and value > int(self.max_look_back):
                continue
            # A window must repeat a few times to leave room for training
            # samples (stricter than the paper's "greater than the length of
            # the dataset" rule, see DESIGN.md).
            if value > series_length // 3:
                continue
            filtered[value] = source
        return filtered

    # -- influence-vector ranking ----------------------------------------------
    def _influence_measures(self, series: np.ndarray, lookback: int, rng) -> tuple[float, float, float]:
        """(F-test, mutual information, negative RF error) for one window length."""
        n_windows_available = len(series) - lookback
        if n_windows_available < 4:
            return 0.0, 0.0, -np.inf
        sample_size = min(int(self.influence_sample_size), n_windows_available)
        starts = rng.choice(n_windows_available, size=sample_size, replace=False)
        features = np.stack([series[start : start + lookback] for start in starts])
        targets = np.array([series[start + lookback] for start in starts])

        f_stat = f_test_regression(features, targets)
        mi = mutual_information(features[:, -1], targets)

        forest = RandomForestRegressor(n_estimators=10, max_depth=6, random_state=0)
        fit_size = min(len(features), 200)
        forest.fit(features[:fit_size], targets[:fit_size])
        predictions = forest.predict(features[:fit_size])
        rf_mae = float(np.mean(np.abs(predictions - targets[:fit_size])))
        return float(f_stat), float(mi), -rf_mae

    def _rank_candidates(self, series: np.ndarray, candidates: dict[int, str]) -> list[int]:
        """Order candidate windows by average influence rank (best first)."""
        values = sorted(candidates)
        if len(values) <= 1:
            return values

        rng = np.random.default_rng(self.random_state)
        measures = np.array(
            [self._influence_measures(series, value, rng) for value in values]
        )
        # Convert each influence measure into ranks (higher measure = better = rank 1).
        ranks = np.zeros_like(measures)
        for column in range(measures.shape[1]):
            order = np.argsort(-measures[:, column], kind="stable")
            ranks[order, column] = np.arange(1, len(values) + 1)
        average_rank = ranks.mean(axis=1)
        ordering = np.argsort(average_rank, kind="stable")
        return [values[index] for index in ordering]

    # -- public API --------------------------------------------------------------
    def discover_univariate(self, series, timestamps=None) -> LookbackResult:
        """Discover look-back candidates for a single series."""
        series = np.asarray(series, dtype=float).ravel()
        series = series[np.isfinite(series)]
        if len(series) < 4 or is_constant(series):
            return LookbackResult(
                selected=int(self.default),
                candidates=[int(self.default)],
                sources={int(self.default): "default"},
            )

        seasonal_periods = self._timestamp_candidates(timestamps, len(series))
        candidates: dict[int, str] = {
            period: "seasonal" for period in seasonal_periods
        }
        candidates.update(
            {
                value: source
                for value, source in self._value_candidates(series, seasonal_periods).items()
                if value not in candidates
            }
        )
        candidates = self._sanity_filter(candidates, len(series))

        if not candidates:
            return LookbackResult(
                selected=int(self.default),
                candidates=[int(self.default)],
                sources={int(self.default): "default"},
            )

        ordered = self._rank_candidates(series, candidates)
        return LookbackResult(
            selected=ordered[0],
            candidates=ordered,
            sources=candidates,
        )

    def discover(self, X, timestamps=None) -> LookbackResult:
        """Discover a look-back window for univariate or multivariate data."""
        X = as_2d_array(X)
        n_series = X.shape[1]
        if n_series == 1:
            return self.discover_univariate(X[:, 0], timestamps)

        per_series_results = [
            self.discover_univariate(X[:, column], timestamps) for column in range(n_series)
        ]
        preferred = [result.selected for result in per_series_results]
        # Union of preferred values (one per series), processed in decreasing order.
        unique_preferred = sorted(set(preferred), reverse=True)

        selected_windows: list[int] = []
        budget = int(self.max_look_back) if self.max_look_back is not None else None
        for window in unique_preferred:
            if budget is not None and window * n_series > budget:
                if self.multivariate_mode == "drop":
                    continue
                capped = max(1, budget // n_series)
                if capped not in selected_windows:
                    selected_windows.append(capped)
            else:
                if window not in selected_windows:
                    selected_windows.append(window)

        if not selected_windows:
            selected_windows = [max(1, int(self.default))]

        sources: dict[int, str] = {}
        for result in per_series_results:
            sources.update(result.sources)
        return LookbackResult(
            selected=selected_windows[0],
            candidates=selected_windows,
            per_series=preferred,
            sources=sources,
        )
