"""Pipeline inventory: the ten pre-composed AutoAI-TS pipelines.

"Currently, pre-composed pipelines are instantiated but the system can also
dynamically generate new pipelines" (paper section 4).  The inventory matches
Table 6 / Figures 14-15 of the paper:

========================================  ===========================================
Pipeline name                             Composition
========================================  ===========================================
``HW_Additive``                           Holt-Winters additive seasonality
``HW_Multiplicative``                     Holt-Winters multiplicative seasonality
``Arima``                                 auto-order ARIMA
``bats``                                  Box-Cox + trend + seasonal + ARMA errors
``MT2RForecaster``                        trend + residual VAR (multivariate hybrid)
``WindowRandomForest``                    random forest over look-back windows
``WindowSVR``                             SVR over look-back windows
``FlattenAutoEnsembler, log``             log transform + flattened-window ensemble
``DifferenceFlattenAutoEnsembler, log``   log transform + differenced-window ensemble
``LocalizedFlattenAutoEnsembler``         localized-window ensemble
========================================  ===========================================

The registry also exposes named factories so users can register additional
pipelines (e.g. the deep-learning candidates) without modifying the system,
which is the extensibility property section 4 advertises ("about 80
different pipelines" were tested with the same mechanism).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

from ..dl.forecaster import MLPForecaster, NBeatsLikeForecaster
from ..exceptions import InvalidParameterError
from ..forecasters.arima import AutoARIMAForecaster
from ..forecasters.bats import BATSForecaster
from ..forecasters.holtwinters import HoltWintersForecaster
from ..forecasters.theta import ThetaForecaster
from ..hybrid.auto_ensembler import (
    DifferenceFlattenAutoEnsembler,
    FlattenAutoEnsembler,
    LocalizedFlattenAutoEnsembler,
)
from ..hybrid.mt2r import MT2RForecaster
from ..hybrid.window_regressor import WindowRandomForestForecaster, WindowSVRForecaster
from ..transforms.stateless import LogTransform
from .pipeline import ForecastingPipeline

__all__ = [
    "PipelineRegistry",
    "default_pipeline_inventory",
    "PAPER_PIPELINE_NAMES",
]

#: The ten pipeline names of the paper, in the order of Table 6.
PAPER_PIPELINE_NAMES = (
    "FlattenAutoEnsembler, log",
    "WindowRandomForest",
    "WindowSVR",
    "MT2RForecaster",
    "bats",
    "DifferenceFlattenAutoEnsembler, log",
    "LocalizedFlattenAutoEnsembler",
    "Arima",
    "HW_Additive",
    "HW_Multiplicative",
)

PipelineFactory = Callable[[int, int, bool], ForecastingPipeline]


def _maybe_log_steps(use_log: bool, allow_log: bool):
    return [("log", LogTransform())] if use_log and allow_log else []


def _build_default_factories() -> Dict[str, PipelineFactory]:
    """Factories keyed by pipeline name.

    Every factory has the signature ``(lookback, horizon, allow_log)`` and
    returns a fresh, unfitted :class:`ForecastingPipeline`.
    """

    def flatten_auto_ensembler(lookback: int, horizon: int, allow_log: bool):
        return ForecastingPipeline(
            steps=_maybe_log_steps(True, allow_log),
            forecaster=FlattenAutoEnsembler(lookback=lookback, horizon=horizon),
            name_override="FlattenAutoEnsembler, log",
        )

    def difference_flatten_auto_ensembler(lookback: int, horizon: int, allow_log: bool):
        return ForecastingPipeline(
            steps=_maybe_log_steps(True, allow_log),
            forecaster=DifferenceFlattenAutoEnsembler(lookback=lookback, horizon=horizon),
            name_override="DifferenceFlattenAutoEnsembler, log",
        )

    def localized_flatten_auto_ensembler(lookback: int, horizon: int, allow_log: bool):
        return ForecastingPipeline(
            steps=[],
            forecaster=LocalizedFlattenAutoEnsembler(lookback=lookback, horizon=horizon),
            name_override="LocalizedFlattenAutoEnsembler",
        )

    def window_random_forest(lookback: int, horizon: int, allow_log: bool):
        return ForecastingPipeline(
            steps=[],
            forecaster=WindowRandomForestForecaster(lookback=lookback, horizon=horizon),
            name_override="WindowRandomForest",
        )

    def window_svr(lookback: int, horizon: int, allow_log: bool):
        return ForecastingPipeline(
            steps=[],
            forecaster=WindowSVRForecaster(lookback=lookback, horizon=horizon),
            name_override="WindowSVR",
        )

    def mt2r(lookback: int, horizon: int, allow_log: bool):
        return ForecastingPipeline(
            steps=[],
            forecaster=MT2RForecaster(residual_lags=max(2, min(lookback, 8)), horizon=horizon),
            name_override="MT2RForecaster",
        )

    def bats(lookback: int, horizon: int, allow_log: bool):
        return ForecastingPipeline(
            steps=[],
            forecaster=BATSForecaster(horizon=horizon),
            name_override="bats",
        )

    def arima(lookback: int, horizon: int, allow_log: bool):
        return ForecastingPipeline(
            steps=[],
            forecaster=AutoARIMAForecaster(horizon=horizon),
            name_override="Arima",
        )

    def hw_additive(lookback: int, horizon: int, allow_log: bool):
        return ForecastingPipeline(
            steps=[],
            forecaster=HoltWintersForecaster(seasonal="additive", horizon=horizon),
            name_override="HW_Additive",
        )

    def hw_multiplicative(lookback: int, horizon: int, allow_log: bool):
        return ForecastingPipeline(
            steps=[],
            forecaster=HoltWintersForecaster(seasonal="multiplicative", horizon=horizon),
            name_override="HW_Multiplicative",
        )

    return {
        "FlattenAutoEnsembler, log": flatten_auto_ensembler,
        "WindowRandomForest": window_random_forest,
        "WindowSVR": window_svr,
        "MT2RForecaster": mt2r,
        "bats": bats,
        "DifferenceFlattenAutoEnsembler, log": difference_flatten_auto_ensembler,
        "LocalizedFlattenAutoEnsembler": localized_flatten_auto_ensembler,
        "Arima": arima,
        "HW_Additive": hw_additive,
        "HW_Multiplicative": hw_multiplicative,
    }


def _build_optional_factories() -> Dict[str, PipelineFactory]:
    """Extra (non-default) pipelines: deep learning and Theta candidates."""

    def mlp(lookback: int, horizon: int, allow_log: bool):
        return ForecastingPipeline(
            steps=[],
            forecaster=MLPForecaster(lookback=max(lookback, 4), horizon=horizon),
            name_override="MLPForecaster",
        )

    def nbeats(lookback: int, horizon: int, allow_log: bool):
        return ForecastingPipeline(
            steps=[],
            forecaster=NBeatsLikeForecaster(lookback=max(lookback, 4), horizon=horizon),
            name_override="NBeatsLike",
        )

    def theta(lookback: int, horizon: int, allow_log: bool):
        return ForecastingPipeline(
            steps=[],
            forecaster=ThetaForecaster(horizon=horizon),
            name_override="Theta",
        )

    return {"MLPForecaster": mlp, "NBeatsLike": nbeats, "Theta": theta}


class PipelineRegistry:
    """Factory registry that instantiates the pipeline inventory.

    The default registry knows the ten paper pipelines plus optional
    deep-learning and Theta candidates.  New factories can be registered at
    runtime; the orchestrator only relies on the common pipeline API.
    """

    def __init__(self, include_optional: bool = False):
        self._factories: Dict[str, PipelineFactory] = dict(_build_default_factories())
        self._optional: Dict[str, PipelineFactory] = dict(_build_optional_factories())
        if include_optional:
            self._factories.update(self._optional)

    # -- registration ---------------------------------------------------------
    def register(self, name: str, factory: PipelineFactory, overwrite: bool = False) -> None:
        """Register a new pipeline factory under ``name``."""
        if name in self._factories and not overwrite:
            raise InvalidParameterError(f"Pipeline {name!r} is already registered.")
        self._factories[name] = factory

    def unregister(self, name: str) -> None:
        """Remove a pipeline factory."""
        if name not in self._factories:
            raise InvalidParameterError(f"Pipeline {name!r} is not registered.")
        del self._factories[name]

    def enable_optional(self, names: Iterable[str] | None = None) -> None:
        """Enable some or all optional pipelines (DL / Theta candidates)."""
        for name, factory in self._optional.items():
            if names is None or name in set(names):
                self._factories[name] = factory

    @property
    def names(self) -> list[str]:
        """Registered pipeline names, paper pipelines first."""
        ordered = [name for name in PAPER_PIPELINE_NAMES if name in self._factories]
        extras = sorted(name for name in self._factories if name not in set(ordered))
        return ordered + extras

    # -- instantiation ----------------------------------------------------------
    def create(
        self, name: str, lookback: int = 8, horizon: int = 1, allow_log: bool = True
    ) -> ForecastingPipeline:
        """Instantiate one pipeline by name."""
        if name not in self._factories:
            raise InvalidParameterError(
                f"Unknown pipeline {name!r}. Registered: {self.names}."
            )
        pipeline = self._factories[name](int(lookback), int(horizon), bool(allow_log))
        pipeline.set_horizon(int(horizon))
        return pipeline

    def create_all(
        self,
        lookback: int = 8,
        horizon: int = 1,
        allow_log: bool = True,
        names: Iterable[str] | None = None,
    ) -> list[ForecastingPipeline]:
        """Instantiate every registered pipeline (or the requested subset)."""
        selected = list(names) if names is not None else self.names
        return [
            self.create(name, lookback=lookback, horizon=horizon, allow_log=allow_log)
            for name in selected
        ]


def default_pipeline_inventory(
    lookback: int = 8, horizon: int = 1, allow_log: bool = True
) -> list[ForecastingPipeline]:
    """Convenience helper returning the ten paper pipelines."""
    return PipelineRegistry().create_all(
        lookback=lookback, horizon=horizon, allow_log=allow_log
    )
