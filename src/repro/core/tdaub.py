"""T-Daub: Time-series Data Allocation Using Upper bounds (Algorithm 1).

T-Daub ranks a set of candidate pipelines without training all of them on
the full data.  It allocates small, *most recent first* subsets of the
training data (reverse allocation, figure 3), projects each pipeline's
learning curve to the full data length with a linear regression, and then
lets only the most promising pipelines acquire geometrically growing
allocations (priority-queue driven acceleration).  Finally the top
``run_to_completion`` pipelines are retrained on the full training split and
re-scored to produce the final ranking.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .._validation import as_2d_array, check_positive_int
from ..exceptions import InvalidParameterError, PipelineExecutionError
from ..stats.linear_model import ols_fit
from .base import BaseEstimator, BaseForecaster, clone

__all__ = ["TDaub", "TDaubResult", "PipelineEvaluation"]


@dataclass
class PipelineEvaluation:
    """Evaluation history of one pipeline across T-Daub allocations."""

    name: str
    allocation_sizes: list[int] = field(default_factory=list)
    scores: list[float] = field(default_factory=list)
    train_seconds: float = 0.0
    projected_score: float = -np.inf
    final_score: float | None = None
    failed: bool = False
    failure_message: str = ""

    def project(self, full_length: int) -> float:
        """Project the learning curve to ``full_length`` samples.

        Uses a linear regression of score on allocation size (the paper fits
        a linear model on the fixed-allocation scores and predicts the score
        at the full data length).  With fewer than two points the latest
        score is used as-is.
        """
        usable = [
            (size, score)
            for size, score in zip(self.allocation_sizes, self.scores)
            if np.isfinite(score)
        ]
        if not usable:
            self.projected_score = -np.inf
        elif len(usable) == 1:
            self.projected_score = usable[0][1]
        else:
            sizes = np.array([size for size, _ in usable], dtype=float)
            scores = np.array([score for _, score in usable], dtype=float)
            fit = ols_fit(sizes.reshape(-1, 1), scores)
            self.projected_score = float(fit.predict(np.array([[float(full_length)]]))[0])
        return self.projected_score


@dataclass
class TDaubResult:
    """Outcome of a T-Daub run."""

    ranked_names: list[str]
    evaluations: dict[str, PipelineEvaluation]
    best_pipeline: BaseForecaster | None
    total_seconds: float

    def ranking_table(self) -> list[tuple[str, float, float]]:
        """Rows of (pipeline name, score used for ranking, training seconds)."""
        rows = []
        for name in self.ranked_names:
            evaluation = self.evaluations[name]
            score = (
                evaluation.final_score
                if evaluation.final_score is not None
                else evaluation.projected_score
            )
            rows.append((name, score, evaluation.train_seconds))
        return rows


def _default_scorer(pipeline: BaseForecaster, test: np.ndarray) -> float:
    """Score a fitted pipeline on held-out data (negative SMAPE; higher is better)."""
    return float(pipeline.score(test, horizon=len(test)))


class TDaub(BaseEstimator):
    """Pipeline ranking and selection by incremental reverse data allocation.

    Parameters (names follow the paper's Algorithm 1)
    --------------------------------------------------
    pipelines:
        Candidate pipelines (estimators implementing ``fit``/``predict``/``score``).
    min_allocation_size:
        Smallest data chunk given to pipelines.  ``None`` chooses
        ``max(len(T1) // 10, 8 * horizon)`` at fit time.
    allocation_size:
        Increment added at each fixed-allocation step (defaults to
        ``min_allocation_size``).
    fixed_allocation_cutoff:
        Limit of the fixed-allocation phase (defaults to
        ``5 * allocation_size``).
    geo_increment_size:
        Multiplier applied to the allocation once the cutoff is passed.
    run_to_completion:
        Number of top pipelines retrained on the full training data in the
        scoring phase.
    test_fraction:
        Fraction of the training data held out as T2 (T-Daub's internal test
        split).
    allocation_direction:
        ``"recent_first"`` (T-Daub's reverse allocation) or ``"oldest_first"``
        (the original Daub behaviour, kept for the ablation benchmark).
    """

    def __init__(
        self,
        pipelines: Sequence[BaseForecaster] = (),
        min_allocation_size: int | None = None,
        allocation_size: int | None = None,
        fixed_allocation_cutoff: int | None = None,
        geo_increment_size: float = 2.0,
        run_to_completion: int = 1,
        test_fraction: float = 0.2,
        horizon: int = 1,
        allocation_direction: str = "recent_first",
        scorer: Callable[[BaseForecaster, np.ndarray], float] | None = None,
        verbose: bool = False,
    ):
        self.pipelines = list(pipelines)
        self.min_allocation_size = min_allocation_size
        self.allocation_size = allocation_size
        self.fixed_allocation_cutoff = fixed_allocation_cutoff
        self.geo_increment_size = geo_increment_size
        self.run_to_completion = run_to_completion
        self.test_fraction = test_fraction
        self.horizon = horizon
        self.allocation_direction = allocation_direction
        self.scorer = scorer
        self.verbose = verbose

    # -- helpers -------------------------------------------------------------
    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[T-Daub] {message}")

    def _pipeline_name(self, pipeline: BaseForecaster, index: int) -> str:
        name = getattr(pipeline, "name", None) or type(pipeline).__name__
        return f"{name}#{index}" if self._name_counts.get(name, 0) > 1 else name

    def _allocation_slice(self, T1: np.ndarray, allocation: int) -> np.ndarray:
        """Return the training slice for a given allocation size."""
        allocation = min(allocation, len(T1))
        if self.allocation_direction == "recent_first":
            return T1[len(T1) - allocation :]
        return T1[:allocation]

    def _train_and_score(
        self,
        template: BaseForecaster,
        evaluation: PipelineEvaluation,
        train: np.ndarray,
        test: np.ndarray,
    ) -> float:
        """Fit a clone of ``template`` on ``train`` and score it on ``test``."""
        scorer = self.scorer or _default_scorer
        start = time.perf_counter()
        try:
            candidate = clone(template)
            if hasattr(candidate, "set_horizon"):
                candidate.set_horizon(int(self.horizon))
            elif hasattr(candidate, "horizon"):
                candidate.horizon = int(self.horizon)
            candidate.fit(train)
            score = scorer(candidate, test)
        except (PipelineExecutionError, Exception) as exc:  # noqa: BLE001
            evaluation.failed = True
            evaluation.failure_message = repr(exc)
            score = -np.inf
        evaluation.train_seconds += time.perf_counter() - start
        evaluation.allocation_sizes.append(len(train))
        evaluation.scores.append(float(score))
        return float(score)

    # -- main algorithm -----------------------------------------------------
    def fit(self, T, y=None) -> "TDaub":
        """Run T-Daub on the training data ``T`` and select the best pipeline."""
        if not self.pipelines:
            raise InvalidParameterError("TDaub requires at least one candidate pipeline.")
        if self.allocation_direction not in ("recent_first", "oldest_first"):
            raise InvalidParameterError(
                "allocation_direction must be 'recent_first' or 'oldest_first'."
            )
        check_positive_int(self.run_to_completion, "run_to_completion")

        start_time = time.perf_counter()
        T = as_2d_array(T)
        horizon = int(self.horizon)

        # Split T into T1 (training) and T2 (internal test), temporal order.
        n_test = max(int(round(len(T) * float(self.test_fraction))), horizon)
        n_test = min(n_test, len(T) // 2)
        n_test = max(n_test, 1)
        T1, T2 = T[: len(T) - n_test], T[len(T) - n_test :]
        L = len(T1)

        # Resolve allocation parameters.
        if self.min_allocation_size is not None:
            min_allocation = int(self.min_allocation_size)
        else:
            min_allocation = max(L // 10, 4 * horizon, 8)
        allocation_size = int(self.allocation_size) if self.allocation_size else min_allocation
        cutoff = (
            int(self.fixed_allocation_cutoff)
            if self.fixed_allocation_cutoff
            else 5 * allocation_size
        )

        # Name bookkeeping (duplicate pipeline classes get an index suffix).
        self._name_counts: dict[str, int] = {}
        for pipeline in self.pipelines:
            name = getattr(pipeline, "name", None) or type(pipeline).__name__
            self._name_counts[name] = self._name_counts.get(name, 0) + 1
        names = [self._pipeline_name(p, i) for i, p in enumerate(self.pipelines)]

        evaluations = {name: PipelineEvaluation(name=name) for name in names}

        # Degenerate case: data set smaller than the minimum allocation — give
        # everything to every pipeline and rank on the full data.
        if L <= min_allocation:
            self._log("Training set smaller than min_allocation_size; full evaluation.")
            for name, pipeline in zip(names, self.pipelines):
                self._train_and_score(pipeline, evaluations[name], T1, T2)
                evaluations[name].final_score = evaluations[name].scores[-1]
            ranked = sorted(
                names, key=lambda n: evaluations[n].final_score or -np.inf, reverse=True
            )
            self._finalise(T, ranked, evaluations, start_time)
            return self

        # -- 1. fixed allocation ------------------------------------------------
        num_fix_runs = max(int(cutoff / min_allocation), 1)
        for run_index in range(1, num_fix_runs + 1):
            allocation = min(min_allocation * run_index, L)
            self._log(f"Fixed allocation {run_index}/{num_fix_runs}: {allocation} samples")
            train = self._allocation_slice(T1, allocation)
            for name, pipeline in zip(names, self.pipelines):
                self._train_and_score(pipeline, evaluations[name], train, T2)
            if allocation >= L:
                break

        for name in names:
            evaluations[name].project(L)

        # -- 2. allocation acceleration (priority queue, geometric growth) ------
        heap: list[tuple[float, int, str]] = []
        last_allocation = {name: evaluations[name].allocation_sizes[-1] for name in names}
        for order, name in enumerate(names):
            heapq.heappush(heap, (-evaluations[name].projected_score, order, name))

        templates = dict(zip(names, self.pipelines))
        while heap:
            neg_score, order, name = heapq.heappop(heap)
            current = last_allocation[name]
            if current >= L:
                # This pipeline has already seen (almost) all data.
                continue
            next_allocation = int(
                max(
                    current + allocation_size,
                    int(current * float(self.geo_increment_size)),
                )
            )
            next_allocation = int(np.ceil(next_allocation / allocation_size) * allocation_size)
            next_allocation = min(next_allocation, L)
            self._log(f"Acceleration: {name} -> {next_allocation} samples")
            train = self._allocation_slice(T1, next_allocation)
            self._train_and_score(templates[name], evaluations[name], train, T2)
            last_allocation[name] = next_allocation
            evaluations[name].project(L)
            if next_allocation < L:
                heapq.heappush(heap, (-evaluations[name].projected_score, order, name))
            else:
                # Pipeline reached the full length; stop accelerating once the
                # top run_to_completion pipelines have reached it.
                finished = sum(1 for allocation in last_allocation.values() if allocation >= L)
                if finished >= int(self.run_to_completion):
                    break

        # -- 3. scoring: retrain the top pipelines on all of T1 ------------------
        provisional = sorted(
            names, key=lambda n: evaluations[n].projected_score, reverse=True
        )
        n_final = min(int(self.run_to_completion), len(names))
        for name in provisional[:n_final]:
            self._log(f"Scoring phase: retraining {name} on full training split")
            score = self._train_and_score(templates[name], evaluations[name], T1, T2)
            evaluations[name].final_score = score

        def _ranking_key(name: str) -> float:
            evaluation = evaluations[name]
            if evaluation.final_score is not None:
                return evaluation.final_score
            return evaluation.projected_score

        ranked = sorted(names, key=_ranking_key, reverse=True)
        self._finalise(T, ranked, evaluations, start_time)
        return self

    def _finalise(
        self,
        T: np.ndarray,
        ranked: list[str],
        evaluations: dict[str, PipelineEvaluation],
        start_time: float,
    ) -> None:
        """Retrain the winning pipeline on the full data and store results."""
        templates = {}
        for index, pipeline in enumerate(self.pipelines):
            name = self._pipeline_name(pipeline, index)
            templates[name] = pipeline

        best_pipeline = None
        for name in ranked:
            template = templates[name]
            try:
                best_pipeline = clone(template)
                if hasattr(best_pipeline, "set_horizon"):
                    best_pipeline.set_horizon(int(self.horizon))
                elif hasattr(best_pipeline, "horizon"):
                    best_pipeline.horizon = int(self.horizon)
                best_pipeline.fit(T)
                self.best_pipeline_name_ = name
                break
            except Exception:  # noqa: BLE001 - try the next-best pipeline
                best_pipeline = None
                continue

        self.ranked_names_ = ranked
        self.evaluations_ = evaluations
        self.best_pipeline_ = best_pipeline
        self.result_ = TDaubResult(
            ranked_names=ranked,
            evaluations=evaluations,
            best_pipeline=best_pipeline,
            total_seconds=time.perf_counter() - start_time,
        )

    # -- estimator API ---------------------------------------------------------
    def predict(self, horizon: int | None = None) -> np.ndarray:
        """Forecast with the best pipeline selected by :meth:`fit`."""
        if getattr(self, "best_pipeline_", None) is None:
            raise InvalidParameterError("TDaub has no successfully trained pipeline.")
        return self.best_pipeline_.predict(horizon if horizon is not None else self.horizon)

    def score(self, X_true, horizon: int | None = None) -> float:
        """Score the best pipeline on held-out data (negative SMAPE)."""
        if getattr(self, "best_pipeline_", None) is None:
            raise InvalidParameterError("TDaub has no successfully trained pipeline.")
        return self.best_pipeline_.score(X_true, horizon=horizon)
