"""T-Daub: Time-series Data Allocation Using Upper bounds (Algorithm 1).

T-Daub ranks a set of candidate pipelines without training all of them on
the full data.  It allocates small, *most recent first* subsets of the
training data (reverse allocation, figure 3), projects each pipeline's
learning curve to the full data length with a linear regression, and then
lets only the most promising pipelines acquire geometrically growing
allocations (priority-queue driven acceleration).  Finally the top
``run_to_completion`` pipelines are retrained on the full training split and
re-scored to produce the final ranking.

Every fit-and-score evaluation is an independent unit of work, so the
algorithm is phrased as *batches* submitted to a pluggable execution engine
(:mod:`repro.exec`): each fixed-allocation round, each acceleration wave and
the final scoring phase fan out as :class:`~repro.exec.FitScoreTask` lists.
With the default ``n_jobs=1`` the schedule is identical to the sequential
paper algorithm; with ``n_jobs > 1`` up to ``n_jobs`` evaluations run
concurrently while task indices keep heap ordering — and therefore the final
ranking — deterministic regardless of worker completion order.  An
:class:`~repro.exec.EvaluationCache` memoizes ``(pipeline parameters, data
slice, horizon)`` so identical refits (e.g. the scoring-phase retrain of a
pipeline that already reached the full allocation) are never recomputed.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from .._validation import as_2d_array, check_positive_int
from ..exceptions import InvalidParameterError
from ..exec.cache import EvaluationCache
from ..exec.executor import BaseExecutor, Deadline, get_executor, resolve_n_jobs
from ..exec.tasks import FitScoreResult, FitScoreTask, run_fit_score_task
from ..stats.linear_model import ols_fit
from .base import BaseEstimator, BaseForecaster, clone

__all__ = ["TDaub", "TDaubResult", "PipelineEvaluation"]


@dataclass
class PipelineEvaluation:
    """Evaluation history of one pipeline across T-Daub allocations."""

    name: str
    allocation_sizes: list[int] = field(default_factory=list)
    scores: list[float] = field(default_factory=list)
    train_seconds: float = 0.0
    projected_score: float = -np.inf
    final_score: float | None = None
    failed: bool = False
    failure_message: str = ""

    def project(self, full_length: int) -> float:
        """Project the learning curve to ``full_length`` samples.

        Uses a linear regression of score on allocation size (the paper fits
        a linear model on the fixed-allocation scores and predicts the score
        at the full data length).  With fewer than two points the latest
        score is used as-is.
        """
        usable = [
            (size, score)
            for size, score in zip(self.allocation_sizes, self.scores)
            if np.isfinite(score)
        ]
        if not usable:
            self.projected_score = -np.inf
        elif len(usable) == 1:
            self.projected_score = usable[0][1]
        else:
            sizes = np.array([size for size, _ in usable], dtype=float)
            scores = np.array([score for _, score in usable], dtype=float)
            fit = ols_fit(sizes.reshape(-1, 1), scores)
            self.projected_score = float(fit.predict(np.array([[float(full_length)]]))[0])
        return self.projected_score


@dataclass
class TDaubResult:
    """Outcome of a T-Daub run."""

    ranked_names: list[str]
    evaluations: dict[str, PipelineEvaluation]
    best_pipeline: BaseForecaster | None
    total_seconds: float

    def ranking_table(self) -> list[tuple[str, float, float]]:
        """Rows of (pipeline name, score used for ranking, training seconds)."""
        rows = []
        for name in self.ranked_names:
            evaluation = self.evaluations[name]
            score = (
                evaluation.final_score
                if evaluation.final_score is not None
                else evaluation.projected_score
            )
            rows.append((name, score, evaluation.train_seconds))
        return rows


class TDaub(BaseEstimator):
    """Pipeline ranking and selection by incremental reverse data allocation.

    Parameters (names follow the paper's Algorithm 1)
    --------------------------------------------------
    pipelines:
        Candidate pipelines (estimators implementing ``fit``/``predict``/``score``).
    min_allocation_size:
        Smallest data chunk given to pipelines.  ``None`` chooses
        ``max(len(T1) // 10, 8 * horizon)`` at fit time.
    allocation_size:
        Increment added at each fixed-allocation step (defaults to
        ``min_allocation_size``).
    fixed_allocation_cutoff:
        Limit of the fixed-allocation phase (defaults to
        ``5 * allocation_size``).
    geo_increment_size:
        Multiplier applied to the allocation once the cutoff is passed.
    run_to_completion:
        Number of top pipelines retrained on the full training data in the
        scoring phase.
    test_fraction:
        Fraction of the training data held out as T2 (T-Daub's internal test
        split).
    allocation_direction:
        ``"recent_first"`` (T-Daub's reverse allocation) or ``"oldest_first"``
        (the original Daub behaviour, kept for the ablation benchmark).
    n_jobs:
        Width of each evaluation batch *and* worker count of auto-created
        executors.  The acceleration phase pops up to ``n_jobs`` pipelines
        per wave, so two runs with equal ``n_jobs`` produce identical
        allocation schedules (and rankings) on any backend.  Default 1:
        the exact sequential schedule of the paper.
    executor:
        Execution backend: ``None`` (serial for ``n_jobs<=1``, processes
        otherwise), an alias (``"serial"``, ``"threads"``, ``"processes"``)
        or a :class:`~repro.exec.BaseExecutor` instance.
    memoize:
        Cache ``(pipeline params, slice, horizon) -> score`` within this fit
        so identical re-evaluations (e.g. the scoring-phase retrain of a
        fully allocated pipeline) are free.  On by default.
    dataplane:
        Use the execution backend's zero-copy data plane when it provides
        one: the training and test splits are registered once per fit
        (shared memory on the process backend, one-time content-addressed
        blobs on the remote backend) and every task ships an
        :class:`~repro.exec.ArrayRef` slice instead of pickling array
        values.  Rankings, score histories and cache keys are identical
        to the by-value path, which remains the fallback for executors
        without a plane (``create_dataplane() -> None``).  On by default;
        ``False`` forces by-value task payloads everywhere.
    cache_dir:
        Directory of a persistent evaluation store shared across fits,
        processes and runs.  Requires ``memoize=True`` (the default); a
        warm re-run against the same data serves every evaluation from
        disk.  ``None`` keeps the cache in-memory only.
    store:
        The persistent evaluation store itself (overrides ``cache_dir``):
        any :class:`~repro.store.StoreBackend` or a store location — an
        ``http://`` URL of a ``python -m repro.store.server`` object
        store, or a directory path.  Lets shards with no shared
        filesystem reuse one store.
    budget:
        Wall-clock budget in seconds for the whole ranking run.  Enforced
        cooperatively on every backend: once exhausted, remaining
        evaluations in the current batch are skipped (the process backend
        also terminates in-flight fits), no further rounds or waves start,
        and the ranking falls back to the projections gathered so far.
        ``budget_exhausted_`` reports whether the deadline fired.
        ``None`` (default) means unlimited.
    progress_callback:
        Called after every fixed-allocation round, acceleration wave and
        the scoring phase with one dict: ``{"phase": "fixed" | "accelerate"
        | "score", "allocation": <samples>, "seconds_spent": <wall so
        far>, "projected_total_seconds": <learning-curve cost projection
        or None>}``.  The cost projection applies T-Daub's own
        linear-extrapolation trick to *cumulative wall-clock* instead of
        scores, so a scheduler learns what this fit will cost rounds
        before it finishes (this is how the work-stealing queue re-prices
        long cells online); it is also stored as ``cost_projection_``.
        Doubles as an in-fit liveness heartbeat.  Exceptions raised by the
        callback are swallowed — observers must never break the fit.
    """

    def __init__(
        self,
        pipelines: Sequence[BaseForecaster] = (),
        min_allocation_size: int | None = None,
        allocation_size: int | None = None,
        fixed_allocation_cutoff: int | None = None,
        geo_increment_size: float = 2.0,
        run_to_completion: int = 1,
        test_fraction: float = 0.2,
        horizon: int = 1,
        allocation_direction: str = "recent_first",
        scorer: Callable[[BaseForecaster, np.ndarray], float] | None = None,
        verbose: bool = False,
        n_jobs: int | None = None,
        executor: str | BaseExecutor | None = None,
        memoize: bool = True,
        dataplane: bool = True,
        cache_dir: str | None = None,
        store=None,
        budget: float | None = None,
        progress_callback: Callable[[dict], None] | None = None,
    ):
        self.pipelines = list(pipelines)
        self.min_allocation_size = min_allocation_size
        self.allocation_size = allocation_size
        self.fixed_allocation_cutoff = fixed_allocation_cutoff
        self.geo_increment_size = geo_increment_size
        self.run_to_completion = run_to_completion
        self.test_fraction = test_fraction
        self.horizon = horizon
        self.allocation_direction = allocation_direction
        self.scorer = scorer
        self.verbose = verbose
        self.n_jobs = n_jobs
        self.executor = executor
        self.memoize = memoize
        self.dataplane = dataplane
        self.cache_dir = cache_dir
        self.store = store
        self.budget = budget
        self.progress_callback = progress_callback

    # -- helpers -------------------------------------------------------------
    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[T-Daub] {message}")

    def _pipeline_name(self, pipeline: BaseForecaster, index: int) -> str:
        name = getattr(pipeline, "name", None) or type(pipeline).__name__
        return f"{name}#{index}" if self._name_counts.get(name, 0) > 1 else name

    def _allocation_slice(self, T1, allocation: int):
        """Return the training slice for a given allocation size.

        ``T1`` is the training split as an array *or* a data-plane
        :class:`~repro.exec.ArrayRef` — both support ``len`` and
        contiguous row slicing, so a reverse allocation is literally the
        same expression either way (for refs it derives a ``(base_ref,
        offset)`` pair without touching the data).
        """
        allocation = min(allocation, len(T1))
        if self.allocation_direction == "recent_first":
            return T1[len(T1) - allocation :]
        return T1[:allocation]

    def _notify_progress(self, phase: str, allocation: int) -> None:
        """Record one cost-curve point and report progress outward.

        The cost curve is (allocation, cumulative wall-clock) per completed
        phase step — a learning curve over *cost* rather than score.  With
        two or more points the same linear extrapolation used by
        :meth:`PipelineEvaluation.project` predicts the total seconds this
        fit will take at the full data length; the projection is clipped
        below at the wall already spent (cost curves never go down).
        """
        spent = time.perf_counter() - self._fit_start
        self._cost_curve.append((float(allocation), float(spent)))
        if len(self._cost_curve) >= 2:
            sizes = np.array([size for size, _ in self._cost_curve], dtype=float)
            seconds = np.array([cost for _, cost in self._cost_curve], dtype=float)
            fit = ols_fit(sizes.reshape(-1, 1), seconds)
            projected = float(
                fit.predict(np.array([[float(self._full_length)]]))[0]
            )
            self.cost_projection_ = max(projected, spent)
        if self.progress_callback is None:
            return
        try:
            self.progress_callback(
                {
                    "phase": phase,
                    "allocation": int(allocation),
                    "seconds_spent": spent,
                    "projected_total_seconds": self.cost_projection_,
                }
            )
        except Exception:  # noqa: BLE001 — observers must never break the fit
            pass

    def _evaluate_batch(
        self,
        jobs: Sequence[tuple[str, BaseForecaster, np.ndarray, np.ndarray]],
        evaluations: dict[str, PipelineEvaluation],
    ) -> list[float]:
        """Evaluate a batch of independent ``(name, template, train, test)`` jobs.

        Cache hits are resolved immediately; only misses are submitted to the
        execution engine.  Results are recorded into the evaluation history
        in job order, so the caller's schedule stays deterministic no matter
        how the backend interleaves the actual work.
        """
        results: dict[int, FitScoreResult] = {}
        pending: list[tuple[int, object, FitScoreTask]] = []
        for index, (name, template, train, test) in enumerate(jobs):
            key = None
            if self._cache is not None:
                key = self._cache.make_key(
                    template, train, test, self.horizon, self.scorer, plane=self._plane
                )
                hit = self._cache.get(key)
                if hit is not None:
                    # The wall clock spent on a cache hit is ~0; keep the
                    # per-pipeline timing honest by not re-charging it.
                    results[index] = replace(hit, seconds=0.0, from_cache=True)
                    continue
            pending.append(
                (
                    index,
                    key,
                    FitScoreTask(
                        tag=index,
                        template=template,
                        train=train,
                        test=test,
                        horizon=int(self.horizon),
                        scorer=self.scorer,
                    ),
                )
            )

        deadline_skips: set[int] = set()
        if pending:
            tasks = [task for _, _, task in pending]
            if self._deadline is not None:
                outcomes = self._engine.map_tasks(
                    run_fit_score_task, tasks, deadline=self._deadline
                )
            else:
                # No budget: keep the pre-deadline call shape so custom
                # BaseExecutor implementations without the ``deadline``
                # parameter keep working.
                outcomes = self._engine.map_tasks(run_fit_score_task, tasks)
            for (index, key, task), outcome in zip(pending, outcomes):
                result = outcome.value
                if result is None:
                    # Executor-level failure (worker crash / timeout): fold it
                    # into the same -inf convention as an in-task exception,
                    # but never cache it — these failures are transient and a
                    # later identical evaluation deserves a fresh attempt.
                    result = FitScoreResult(
                        tag=index,
                        score=-np.inf,
                        seconds=outcome.seconds,
                        n_train=int(len(task.train)),
                        error=outcome.error or "execution engine returned no result",
                    )
                    if outcome.timed_out:
                        # Preempted/skipped by the run deadline, not broken:
                        # the pipeline must not be reported as failed.
                        deadline_skips.add(index)
                elif key is not None:
                    # In-task failures stay memory-only: they are often
                    # environment-specific (missing optional dependency,
                    # resource exhaustion) and must not poison other runs
                    # or machines sharing the persistent store.
                    self._cache.put(key, result, persist=not result.failed)
                results[index] = result

        scores: list[float] = []
        for index, (name, _, train, _) in enumerate(jobs):
            result = results[index]
            evaluation = evaluations[name]
            if result.failed and index not in deadline_skips:
                evaluation.failed = True
                evaluation.failure_message = result.error
            evaluation.train_seconds += result.seconds
            evaluation.allocation_sizes.append(int(len(train)))
            evaluation.scores.append(float(result.score))
            scores.append(float(result.score))
        return scores

    # -- main algorithm -----------------------------------------------------
    def fit(self, T, y=None) -> "TDaub":
        """Run T-Daub on the training data ``T`` and select the best pipeline."""
        if not self.pipelines:
            raise InvalidParameterError("TDaub requires at least one candidate pipeline.")
        if self.allocation_direction not in ("recent_first", "oldest_first"):
            raise InvalidParameterError(
                "allocation_direction must be 'recent_first' or 'oldest_first'."
            )
        check_positive_int(self.run_to_completion, "run_to_completion")

        start_time = time.perf_counter()
        self._engine = get_executor(self.executor, self.n_jobs)
        plane_factory = getattr(self._engine, "create_dataplane", None)
        self._plane = (
            plane_factory() if self.dataplane and callable(plane_factory) else None
        )
        try:
            return self._fit(T, start_time)
        finally:
            # The plane's registrations (shared-memory segments, remote blob
            # roster entries) live exactly as long as one fit.
            plane, self._plane = self._plane, None
            if plane is not None:
                plane.close()

    def _fit(self, T, start_time: float) -> "TDaub":
        self._batch_size = max(1, resolve_n_jobs(self.n_jobs))
        self._fit_start = start_time
        self._cost_curve: list[tuple[float, float]] = []
        self.cost_projection_: float | None = None
        self._cache = (
            EvaluationCache(cache_dir=self.cache_dir, store=self.store)
            if self.memoize
            else None
        )
        self._deadline = Deadline(self.budget) if self.budget is not None else None
        T = as_2d_array(T)
        horizon = int(self.horizon)

        # Split T into T1 (training) and T2 (internal test), temporal order.
        n_test = max(int(round(len(T) * float(self.test_fraction))), horizon)
        n_test = min(n_test, len(T) // 2)
        n_test = max(n_test, 1)
        T1, T2 = T[: len(T) - n_test], T[len(T) - n_test :]
        L = len(T1)
        self._full_length = L
        if self._plane is not None:
            # Register the splits once: every allocation below derives a
            # zero-copy (base_ref, offset) slice instead of carrying array
            # values.  register() returns the array unchanged when the
            # plane cannot pin it, transparently keeping that input
            # by-value.
            T1 = self._plane.register(T1)
            T2 = self._plane.register(T2)

        # Resolve allocation parameters.
        if self.min_allocation_size is not None:
            min_allocation = int(self.min_allocation_size)
        else:
            min_allocation = max(L // 10, 4 * horizon, 8)
        allocation_size = int(self.allocation_size) if self.allocation_size else min_allocation
        cutoff = (
            int(self.fixed_allocation_cutoff)
            if self.fixed_allocation_cutoff
            else 5 * allocation_size
        )

        # Name bookkeeping (duplicate pipeline classes get an index suffix).
        self._name_counts: dict[str, int] = {}
        for pipeline in self.pipelines:
            name = getattr(pipeline, "name", None) or type(pipeline).__name__
            self._name_counts[name] = self._name_counts.get(name, 0) + 1
        names = [self._pipeline_name(p, i) for i, p in enumerate(self.pipelines)]
        templates = dict(zip(names, self.pipelines))

        evaluations = {name: PipelineEvaluation(name=name) for name in names}

        # Degenerate case: data set smaller than the minimum allocation — give
        # everything to every pipeline and rank on the full data.
        if L <= min_allocation:
            self._log("Training set smaller than min_allocation_size; full evaluation.")
            scores = self._evaluate_batch(
                [(name, templates[name], T1, T2) for name in names], evaluations
            )
            self._notify_progress("score", L)
            for name, score in zip(names, scores):
                evaluations[name].final_score = score
            # Explicit None check: a perfect forecast scores -0.0, which is
            # falsy and must not be confused with "never scored".
            ranked = sorted(
                names,
                key=lambda n: (
                    evaluations[n].final_score
                    if evaluations[n].final_score is not None
                    else -np.inf
                ),
                reverse=True,
            )
            self._finalise(T, ranked, evaluations, start_time)
            return self

        # -- 1. fixed allocation ------------------------------------------------
        # Every round is one batch: all pipelines share the same slice and
        # are independent of one another.
        num_fix_runs = max(int(cutoff / min_allocation), 1)
        for run_index in range(1, num_fix_runs + 1):
            if self._deadline is not None and self._deadline.expired:
                self._log("Budget exhausted during fixed allocation; stopping early.")
                break
            allocation = min(min_allocation * run_index, L)
            self._log(f"Fixed allocation {run_index}/{num_fix_runs}: {allocation} samples")
            train = self._allocation_slice(T1, allocation)
            self._evaluate_batch(
                [(name, templates[name], train, T2) for name in names], evaluations
            )
            self._notify_progress("fixed", allocation)
            if allocation >= L:
                break

        for name in names:
            evaluations[name].project(L)

        # -- 2. allocation acceleration (priority queue, geometric growth) ------
        # Waves of up to ``n_jobs`` pipelines are popped from the heap and
        # evaluated as one batch.  Heap entries carry the original submission
        # order so tie-breaking — and with it the whole schedule — stays
        # deterministic on every backend.  Pipelines whose projection is
        # -inf (no finite score on any allocation: permanently broken) are
        # dropped instead of wasting further full fit cycles.
        heap: list[tuple[float, int, str]] = []
        # An exhausted budget can end the fixed phase before any round ran,
        # leaving a pipeline's allocation history empty.
        last_allocation = {
            name: (
                evaluations[name].allocation_sizes[-1]
                if evaluations[name].allocation_sizes
                else 0
            )
            for name in names
        }
        for order, name in enumerate(names):
            if np.isfinite(evaluations[name].projected_score):
                heapq.heappush(heap, (-evaluations[name].projected_score, order, name))

        while heap:
            if self._deadline is not None and self._deadline.expired:
                self._log("Budget exhausted during acceleration; stopping early.")
                break
            wave: list[tuple[int, str, int]] = []
            while heap and len(wave) < self._batch_size:
                _, order, name = heapq.heappop(heap)
                current = last_allocation[name]
                if current >= L:
                    # This pipeline has already seen (almost) all data.
                    continue
                next_allocation = int(
                    max(
                        current + allocation_size,
                        int(current * float(self.geo_increment_size)),
                    )
                )
                next_allocation = int(
                    np.ceil(next_allocation / allocation_size) * allocation_size
                )
                next_allocation = min(next_allocation, L)
                wave.append((order, name, next_allocation))
            if not wave:
                break
            self._log(
                "Acceleration wave: "
                + ", ".join(f"{name} -> {alloc}" for _, name, alloc in wave)
            )
            self._evaluate_batch(
                [
                    (name, templates[name], self._allocation_slice(T1, alloc), T2)
                    for _, name, alloc in wave
                ],
                evaluations,
            )
            self._notify_progress(
                "accelerate", max(alloc for _, _, alloc in wave)
            )
            stop = False
            for order, name, alloc in wave:
                last_allocation[name] = alloc
                evaluations[name].project(L)
                if alloc < L:
                    if np.isfinite(evaluations[name].projected_score):
                        heapq.heappush(
                            heap, (-evaluations[name].projected_score, order, name)
                        )
                else:
                    # Pipeline reached the full length; stop accelerating once
                    # the top run_to_completion pipelines have reached it.
                    finished = sum(
                        1 for allocation in last_allocation.values() if allocation >= L
                    )
                    if finished >= int(self.run_to_completion):
                        stop = True
            if stop:
                break

        # -- 3. scoring: retrain the top pipelines on all of T1 ------------------
        # One final batch; a pipeline that already trained on the full split
        # during fixed allocation or acceleration is a cache hit here.
        provisional = sorted(
            names, key=lambda n: evaluations[n].projected_score, reverse=True
        )
        n_final = min(int(self.run_to_completion), len(names))
        final_names = provisional[:n_final]
        self._log("Scoring phase: retraining " + ", ".join(final_names) + " on full split")
        # Even with the budget exhausted the batch is still submitted: cache
        # hits (a pipeline that already reached the full allocation) are free
        # and the executor skips the rest under the expired deadline.
        final_scores = self._evaluate_batch(
            [(name, templates[name], T1, T2) for name in final_names], evaluations
        )
        self._notify_progress("score", L)
        for name, score in zip(final_names, final_scores):
            if (
                self._deadline is not None
                and self._deadline.expired
                and not np.isfinite(score)
            ):
                # The retrain was skipped, not evaluated: rank the pipeline
                # on its projection instead of a phantom -inf score.
                continue
            evaluations[name].final_score = score

        def _ranking_key(name: str) -> float:
            evaluation = evaluations[name]
            if evaluation.final_score is not None:
                return evaluation.final_score
            return evaluation.projected_score

        ranked = sorted(names, key=_ranking_key, reverse=True)
        self._finalise(T, ranked, evaluations, start_time)
        return self

    def _finalise(
        self,
        T: np.ndarray,
        ranked: list[str],
        evaluations: dict[str, PipelineEvaluation],
        start_time: float,
    ) -> None:
        """Retrain the winning pipeline on the full data and store results."""
        templates = {}
        for index, pipeline in enumerate(self.pipelines):
            name = self._pipeline_name(pipeline, index)
            templates[name] = pipeline

        best_pipeline = None
        for name in ranked:
            template = templates[name]
            try:
                best_pipeline = clone(template)
                if hasattr(best_pipeline, "set_horizon"):
                    best_pipeline.set_horizon(int(self.horizon))
                elif hasattr(best_pipeline, "horizon"):
                    best_pipeline.horizon = int(self.horizon)
                best_pipeline.fit(T)
                self.best_pipeline_name_ = name
                break
            except Exception:  # noqa: BLE001 - try the next-best pipeline
                best_pipeline = None
                continue

        self.ranked_names_ = ranked
        self.evaluations_ = evaluations
        self.best_pipeline_ = best_pipeline
        self.cache_stats_ = self._cache.stats if self._cache is not None else None
        self.budget_exhausted_ = bool(self._deadline is not None and self._deadline.expired)
        self.result_ = TDaubResult(
            ranked_names=ranked,
            evaluations=evaluations,
            best_pipeline=best_pipeline,
            total_seconds=time.perf_counter() - start_time,
        )

    # -- estimator API ---------------------------------------------------------
    def predict(self, horizon: int | None = None) -> np.ndarray:
        """Forecast with the best pipeline selected by :meth:`fit`."""
        if getattr(self, "best_pipeline_", None) is None:
            raise InvalidParameterError("TDaub has no successfully trained pipeline.")
        return self.best_pipeline_.predict(horizon if horizon is not None else self.horizon)

    def score(self, X_true, horizon: int | None = None) -> float:
        """Score the best pipeline on held-out data (negative SMAPE)."""
        if getattr(self, "best_pipeline_", None) is None:
            raise InvalidParameterError("TDaub has no successfully trained pipeline.")
        return self.best_pipeline_.score(X_true, horizon=horizon)
