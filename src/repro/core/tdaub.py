"""T-Daub: Time-series Data Allocation Using Upper bounds (Algorithm 1).

T-Daub ranks a set of candidate pipelines without training all of them on
the full data.  It allocates small, *most recent first* subsets of the
training data (reverse allocation, figure 3), projects each pipeline's
learning curve to the full data length with a linear regression, and then
lets only the most promising pipelines acquire geometrically growing
allocations (priority-queue driven acceleration).  Finally the top
``run_to_completion`` pipelines are retrained on the full training split and
re-scored to produce the final ranking.

Every fit-and-score evaluation is an independent unit of work, so the
algorithm is phrased as *batches* submitted to a pluggable execution engine
(:mod:`repro.exec`): each fixed-allocation round, each acceleration wave and
the final scoring phase fan out as :class:`~repro.exec.FitScoreTask` lists.
With the default ``n_jobs=1`` the schedule is identical to the sequential
paper algorithm; with ``n_jobs > 1`` up to ``n_jobs`` evaluations run
concurrently while task indices keep heap ordering — and therefore the final
ranking — deterministic regardless of worker completion order.  An
:class:`~repro.exec.EvaluationCache` memoizes ``(pipeline parameters, data
slice, horizon)`` so identical refits (e.g. the scoring-phase retrain of a
pipeline that already reached the full allocation) are never recomputed.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from .._validation import as_2d_array, check_positive_int
from ..exceptions import InvalidParameterError
from ..exec.cache import EvaluationCache
from ..exec.executor import BaseExecutor, Deadline, get_executor, resolve_n_jobs
from ..exec.tasks import FitScoreResult, FitScoreTask, run_fit_score_task
from ..stats.linear_model import ols_fit
from .base import BaseEstimator, BaseForecaster, clone

__all__ = ["TDaub", "TDaubResult", "TDaubWarmState", "PipelineEvaluation"]


@dataclass
class PipelineEvaluation:
    """Evaluation history of one pipeline across T-Daub allocations."""

    name: str
    allocation_sizes: list[int] = field(default_factory=list)
    scores: list[float] = field(default_factory=list)
    train_seconds: float = 0.0
    projected_score: float = -np.inf
    final_score: float | None = None
    failed: bool = False
    failure_message: str = ""

    def project(self, full_length: int) -> float:
        """Project the learning curve to ``full_length`` samples.

        Uses a linear regression of score on allocation size (the paper fits
        a linear model on the fixed-allocation scores and predicts the score
        at the full data length).  With fewer than two points the latest
        score is used as-is.
        """
        usable = [
            (size, score)
            for size, score in zip(self.allocation_sizes, self.scores)
            if np.isfinite(score)
        ]
        if not usable:
            self.projected_score = -np.inf
        elif len(usable) == 1:
            self.projected_score = usable[0][1]
        else:
            sizes = np.array([size for size, _ in usable], dtype=float)
            scores = np.array([score for _, score in usable], dtype=float)
            fit = ols_fit(sizes.reshape(-1, 1), scores)
            self.projected_score = float(fit.predict(np.array([[float(full_length)]]))[0])
        return self.projected_score


@dataclass
class TDaubResult:
    """Outcome of a T-Daub run."""

    ranked_names: list[str]
    evaluations: dict[str, PipelineEvaluation]
    best_pipeline: BaseForecaster | None
    total_seconds: float

    def ranking_table(self) -> list[tuple[str, float, float]]:
        """Rows of (pipeline name, score used for ranking, training seconds)."""
        rows = []
        for name in self.ranked_names:
            evaluation = self.evaluations[name]
            score = (
                evaluation.final_score
                if evaluation.final_score is not None
                else evaluation.projected_score
            )
            rows.append((name, score, evaluation.train_seconds))
        return rows


@dataclass
class TDaubWarmState:
    """Everything a follow-up ranking needs to reuse this run's work.

    Produced by every :meth:`TDaub.fit` as ``warm_state_`` and accepted
    back via ``TDaub(warm_start=...)``.  It pins the *evaluation geometry*
    (protocol, internal test length, allocation grid) so the warm run
    replays the exact same deterministic schedule of evaluation cells,
    and carries three score sources for those cells: the live
    :class:`~repro.exec.EvaluationCache` (adopted, stats reset), the raw
    ``(pipeline, n_train) -> score`` points as a fallback when cache
    entries were evicted, and the cost curve to seed the wall-clock
    projection.  Under ``eval_protocol="rolling_origin"`` every cell whose
    train+test window lies inside ``series_length`` is a pure function of
    bytes that appends cannot change, so the warm run re-fits nothing for
    them — that is the O(Δ) re-ranking path.
    """

    series_length: int
    n_test: int
    horizon: int
    eval_protocol: str
    min_allocation: int
    allocation_size: int
    cutoff: int
    ranked_names: list[str] = field(default_factory=list)
    points: dict = field(default_factory=dict, repr=False)
    cost_curve: list = field(default_factory=list, repr=False)
    cost_projection: float | None = None
    cache: EvaluationCache | None = field(default=None, repr=False)


class TDaub(BaseEstimator):
    """Pipeline ranking and selection by incremental reverse data allocation.

    Parameters (names follow the paper's Algorithm 1)
    --------------------------------------------------
    pipelines:
        Candidate pipelines (estimators implementing ``fit``/``predict``/``score``).
    min_allocation_size:
        Smallest data chunk given to pipelines.  ``None`` chooses
        ``max(len(T1) // 10, 8 * horizon)`` at fit time.
    allocation_size:
        Increment added at each fixed-allocation step (defaults to
        ``min_allocation_size``).
    fixed_allocation_cutoff:
        Limit of the fixed-allocation phase (defaults to
        ``5 * allocation_size``).
    geo_increment_size:
        Multiplier applied to the allocation once the cutoff is passed.
    run_to_completion:
        Number of top pipelines retrained on the full training data in the
        scoring phase.
    test_fraction:
        Fraction of the training data held out as T2 (T-Daub's internal test
        split).
    allocation_direction:
        ``"recent_first"`` (T-Daub's reverse allocation) or ``"oldest_first"``
        (the original Daub behaviour, kept for the ablation benchmark).
    n_jobs:
        Width of each evaluation batch *and* worker count of auto-created
        executors.  The acceleration phase pops up to ``n_jobs`` pipelines
        per wave, so two runs with equal ``n_jobs`` produce identical
        allocation schedules (and rankings) on any backend.  Default 1:
        the exact sequential schedule of the paper.
    executor:
        Execution backend: ``None`` (serial for ``n_jobs<=1``, processes
        otherwise), an alias (``"serial"``, ``"threads"``, ``"processes"``)
        or a :class:`~repro.exec.BaseExecutor` instance.
    memoize:
        Cache ``(pipeline params, slice, horizon) -> score`` within this fit
        so identical re-evaluations (e.g. the scoring-phase retrain of a
        fully allocated pipeline) are free.  On by default.
    dataplane:
        Use the execution backend's zero-copy data plane when it provides
        one: the training and test splits are registered once per fit
        (shared memory on the process backend, one-time content-addressed
        blobs on the remote backend) and every task ships an
        :class:`~repro.exec.ArrayRef` slice instead of pickling array
        values.  Rankings, score histories and cache keys are identical
        to the by-value path, which remains the fallback for executors
        without a plane (``create_dataplane() -> None``).  On by default;
        ``False`` forces by-value task payloads everywhere.
    cache_dir:
        Directory of a persistent evaluation store shared across fits,
        processes and runs.  Requires ``memoize=True`` (the default); a
        warm re-run against the same data serves every evaluation from
        disk.  ``None`` keeps the cache in-memory only.
    store:
        The persistent evaluation store itself (overrides ``cache_dir``):
        any :class:`~repro.store.StoreBackend` or a store location — an
        ``http://`` URL of a ``python -m repro.store.server`` object
        store, or a directory path.  Lets shards with no shared
        filesystem reuse one store.
    budget:
        Wall-clock budget in seconds for the whole ranking run.  Enforced
        cooperatively on every backend: once exhausted, remaining
        evaluations in the current batch are skipped (the process backend
        also terminates in-flight fits), no further rounds or waves start,
        and the ranking falls back to the projections gathered so far.
        ``budget_exhausted_`` reports whether the deadline fired.
        ``None`` (default) means unlimited.
    progress_callback:
        Called after every fixed-allocation round, acceleration wave and
        the scoring phase with one dict: ``{"phase": "fixed" | "accelerate"
        | "score", "allocation": <samples>, "seconds_spent": <wall so
        far>, "projected_total_seconds": <learning-curve cost projection
        or None>}``.  The cost projection applies T-Daub's own
        linear-extrapolation trick to *cumulative wall-clock* instead of
        scores, so a scheduler learns what this fit will cost rounds
        before it finishes (this is how the work-stealing queue re-prices
        long cells online); it is also stored as ``cost_projection_``.
        Doubles as an in-fit liveness heartbeat.  Exceptions raised by the
        callback are swallowed — observers must never break the fit.
    eval_protocol:
        ``"holdout"`` (default): today's split — a fixed tail ``T2`` tests
        every allocation, with ``allocation_direction`` choosing which end
        of ``T1`` each slice comes from.  ``"rolling_origin"``: the
        streaming protocol — allocation ``a`` trains on the prefix
        ``T[:a]`` and tests on the next ``n_test`` rows ``T[a:a+n_test]``
        (``allocation_direction`` is ignored; the slices are inherently
        oldest-first).  Every rolling cell is a pure function of a prefix
        of ``T``, so appending arrivals leaves all previous cells —
        and their cache records — byte-identical.
    n_test:
        Length of the internal test window.  ``None`` derives it from
        ``test_fraction`` (or inherits the warm state's, so warm re-ranks
        keep the geometry that makes their cache records match).
    warm_start:
        A :class:`TDaubWarmState` (or a fitted :class:`TDaub`, whose
        ``warm_state_`` is taken) from a previous ranking over a prefix of
        the same data.  The warm run pins its allocation grid and test
        length to the prior run's, adopts its evaluation cache, and serves
        every unchanged-prefix cell from cache (or from the recorded score
        points) instead of re-fitting; only cells that see new bytes run.
        ``warm_hits_`` / ``prefix_refits_`` count both sides.  Requires a
        matching ``eval_protocol`` and ``horizon``.
    """

    def __init__(
        self,
        pipelines: Sequence[BaseForecaster] = (),
        min_allocation_size: int | None = None,
        allocation_size: int | None = None,
        fixed_allocation_cutoff: int | None = None,
        geo_increment_size: float = 2.0,
        run_to_completion: int = 1,
        test_fraction: float = 0.2,
        horizon: int = 1,
        allocation_direction: str = "recent_first",
        scorer: Callable[[BaseForecaster, np.ndarray], float] | None = None,
        verbose: bool = False,
        n_jobs: int | None = None,
        executor: str | BaseExecutor | None = None,
        memoize: bool = True,
        dataplane: bool = True,
        cache_dir: str | None = None,
        store=None,
        budget: float | None = None,
        progress_callback: Callable[[dict], None] | None = None,
        eval_protocol: str = "holdout",
        n_test: int | None = None,
        warm_start: "TDaubWarmState | TDaub | None" = None,
    ):
        self.pipelines = list(pipelines)
        self.min_allocation_size = min_allocation_size
        self.allocation_size = allocation_size
        self.fixed_allocation_cutoff = fixed_allocation_cutoff
        self.geo_increment_size = geo_increment_size
        self.run_to_completion = run_to_completion
        self.test_fraction = test_fraction
        self.horizon = horizon
        self.allocation_direction = allocation_direction
        self.scorer = scorer
        self.verbose = verbose
        self.n_jobs = n_jobs
        self.executor = executor
        self.memoize = memoize
        self.dataplane = dataplane
        self.cache_dir = cache_dir
        self.store = store
        self.budget = budget
        self.progress_callback = progress_callback
        self.eval_protocol = eval_protocol
        self.n_test = n_test
        self.warm_start = warm_start

    # -- helpers -------------------------------------------------------------
    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[T-Daub] {message}")

    def _pipeline_name(self, pipeline: BaseForecaster, index: int) -> str:
        name = getattr(pipeline, "name", None) or type(pipeline).__name__
        return f"{name}#{index}" if self._name_counts.get(name, 0) > 1 else name

    def _allocation_slice(self, T1, allocation: int):
        """Return the training slice for a given allocation size.

        ``T1`` is the training split as an array *or* a data-plane
        :class:`~repro.exec.ArrayRef` — both support ``len`` and
        contiguous row slicing, so a reverse allocation is literally the
        same expression either way (for refs it derives a ``(base_ref,
        offset)`` pair without touching the data).
        """
        allocation = min(allocation, len(T1))
        if self.allocation_direction == "recent_first":
            return T1[len(T1) - allocation :]
        return T1[:allocation]

    def _notify_progress(self, phase: str, allocation: int) -> None:
        """Record one cost-curve point and report progress outward.

        The cost curve is (allocation, cumulative wall-clock) per completed
        phase step — a learning curve over *cost* rather than score.  With
        two or more points the same linear extrapolation used by
        :meth:`PipelineEvaluation.project` predicts the total seconds this
        fit will take at the full data length; the projection is clipped
        below at the wall already spent (cost curves never go down).
        """
        spent = time.perf_counter() - self._fit_start
        self._cost_curve.append((float(allocation), float(spent)))
        if len(self._cost_curve) >= 2:
            sizes = np.array([size for size, _ in self._cost_curve], dtype=float)
            seconds = np.array([cost for _, cost in self._cost_curve], dtype=float)
            fit = ols_fit(sizes.reshape(-1, 1), seconds)
            projected = float(
                fit.predict(np.array([[float(self._full_length)]]))[0]
            )
            self.cost_projection_ = max(projected, spent)
        if self.progress_callback is None:
            return
        try:
            self.progress_callback(
                {
                    "phase": phase,
                    "allocation": int(allocation),
                    "seconds_spent": spent,
                    "projected_total_seconds": self.cost_projection_,
                }
            )
        except Exception:  # noqa: BLE001 — observers must never break the fit
            pass

    def _evaluate_batch(
        self,
        jobs: Sequence[tuple[str, BaseForecaster, np.ndarray, np.ndarray]],
        evaluations: dict[str, PipelineEvaluation],
    ) -> list[float]:
        """Evaluate a batch of independent ``(name, template, train, test)`` jobs.

        Cache hits are resolved immediately; only misses are submitted to the
        execution engine.  Results are recorded into the evaluation history
        in job order, so the caller's schedule stays deterministic no matter
        how the backend interleaves the actual work.
        """
        results: dict[int, FitScoreResult] = {}
        pending: list[tuple[int, object, FitScoreTask]] = []
        for index, (name, template, train, test) in enumerate(jobs):
            # Under a rolling-origin warm start, a cell whose train+test
            # window fits inside the previously ranked prefix is untouched
            # by the appended rows: its evaluation *must* be reusable.
            is_prefix = (
                self._prefix_limit is not None
                and len(train) + len(test) <= self._prefix_limit
            )
            key = None
            if self._cache is not None:
                key = self._cache.make_key(
                    template, train, test, self.horizon, self.scorer, plane=self._plane
                )
                hit = self._cache.get(key, prefix=is_prefix)
                if hit is not None:
                    # The wall clock spent on a cache hit is ~0; keep the
                    # per-pipeline timing honest by not re-charging it.
                    results[index] = replace(hit, seconds=0.0, from_cache=True)
                    if is_prefix:
                        self.warm_hits_ += 1
                    continue
            if is_prefix and self._warm is not None:
                # Cache record evicted (or no cache): fall back to the warm
                # state's recorded score point for this exact cell.  Scores
                # are pure functions of (pipeline, train, test), so the
                # recorded value is what a re-fit would compute.
                point = self._warm.points.get((name, int(len(train))))
                if point is not None:
                    result = FitScoreResult(
                        tag=index,
                        score=float(point),
                        seconds=0.0,
                        n_train=int(len(train)),
                        from_cache=True,
                    )
                    if key is not None:
                        self._cache.put(key, result, persist=False)
                    results[index] = result
                    self.warm_hits_ += 1
                    continue
            if is_prefix:
                # Reaching here means an unchanged-prefix cell is about to
                # be re-fitted — the streaming benchmark gates this at 0.
                self.prefix_refits_ += 1
            pending.append(
                (
                    index,
                    key,
                    FitScoreTask(
                        tag=index,
                        template=template,
                        train=train,
                        test=test,
                        horizon=int(self.horizon),
                        scorer=self.scorer,
                    ),
                )
            )

        deadline_skips: set[int] = set()
        if pending:
            tasks = [task for _, _, task in pending]
            if self._deadline is not None:
                outcomes = self._engine.map_tasks(
                    run_fit_score_task, tasks, deadline=self._deadline
                )
            else:
                # No budget: keep the pre-deadline call shape so custom
                # BaseExecutor implementations without the ``deadline``
                # parameter keep working.
                outcomes = self._engine.map_tasks(run_fit_score_task, tasks)
            for (index, key, task), outcome in zip(pending, outcomes):
                result = outcome.value
                if result is None:
                    # Executor-level failure (worker crash / timeout): fold it
                    # into the same -inf convention as an in-task exception,
                    # but never cache it — these failures are transient and a
                    # later identical evaluation deserves a fresh attempt.
                    result = FitScoreResult(
                        tag=index,
                        score=-np.inf,
                        seconds=outcome.seconds,
                        n_train=int(len(task.train)),
                        error=outcome.error or "execution engine returned no result",
                    )
                    if outcome.timed_out:
                        # Preempted/skipped by the run deadline, not broken:
                        # the pipeline must not be reported as failed.
                        deadline_skips.add(index)
                elif key is not None:
                    # In-task failures stay memory-only: they are often
                    # environment-specific (missing optional dependency,
                    # resource exhaustion) and must not poison other runs
                    # or machines sharing the persistent store.
                    self._cache.put(key, result, persist=not result.failed)
                results[index] = result

        scores: list[float] = []
        for index, (name, _, train, _) in enumerate(jobs):
            result = results[index]
            evaluation = evaluations[name]
            if result.failed and index not in deadline_skips:
                evaluation.failed = True
                evaluation.failure_message = result.error
            evaluation.train_seconds += result.seconds
            evaluation.allocation_sizes.append(int(len(train)))
            evaluation.scores.append(float(result.score))
            scores.append(float(result.score))
        return scores

    # -- main algorithm -----------------------------------------------------
    def fit(self, T, y=None) -> "TDaub":
        """Run T-Daub on the training data ``T`` and select the best pipeline."""
        if not self.pipelines:
            raise InvalidParameterError("TDaub requires at least one candidate pipeline.")
        if self.allocation_direction not in ("recent_first", "oldest_first"):
            raise InvalidParameterError(
                "allocation_direction must be 'recent_first' or 'oldest_first'."
            )
        if self.eval_protocol not in ("holdout", "rolling_origin"):
            raise InvalidParameterError(
                "eval_protocol must be 'holdout' or 'rolling_origin'."
            )
        check_positive_int(self.run_to_completion, "run_to_completion")

        start_time = time.perf_counter()
        self._engine = get_executor(self.executor, self.n_jobs)
        plane_factory = getattr(self._engine, "create_dataplane", None)
        self._plane = (
            plane_factory() if self.dataplane and callable(plane_factory) else None
        )
        try:
            return self._fit(T, start_time)
        finally:
            # The plane's registrations (shared-memory segments, remote blob
            # roster entries) live exactly as long as one fit.
            plane, self._plane = self._plane, None
            if plane is not None:
                plane.close()

    def _fit(self, T, start_time: float) -> "TDaub":
        self._batch_size = max(1, resolve_n_jobs(self.n_jobs))
        self._fit_start = start_time
        self._cost_curve: list[tuple[float, float]] = []
        self.cost_projection_: float | None = None

        warm = self.warm_start
        if isinstance(warm, TDaub):
            warm = getattr(warm, "warm_state_", None)
        if warm is not None:
            if warm.eval_protocol != self.eval_protocol:
                raise InvalidParameterError(
                    f"warm_start was produced under eval_protocol="
                    f"{warm.eval_protocol!r}; this run uses {self.eval_protocol!r}."
                )
            if int(warm.horizon) != int(self.horizon):
                raise InvalidParameterError(
                    f"warm_start horizon {warm.horizon} != this run's {self.horizon}."
                )
        self._warm = warm
        self.warm_hits_ = 0
        self.prefix_refits_ = 0
        if warm is not None and warm.cost_projection is not None:
            self.cost_projection_ = float(warm.cost_projection)

        if not self.memoize:
            self._cache = None
        elif (
            warm is not None
            and warm.cache is not None
            and self.cache_dir is None
            and self.store is None
        ):
            # Adopt the prior ranking's cache wholesale: its memory tier
            # already holds every prefix cell, so a warm re-rank hits even
            # without a persistent store.  Stats reset so this run's
            # hit/prefix counters describe this run only.
            self._cache = warm.cache
            self._cache.reset_stats()
        else:
            self._cache = EvaluationCache(cache_dir=self.cache_dir, store=self.store)
        self._deadline = Deadline(self.budget) if self.budget is not None else None
        T = as_2d_array(T)
        horizon = int(self.horizon)
        rolling = self.eval_protocol == "rolling_origin"

        # Split T into T1 (training) and T2 (internal test), temporal order.
        if self.n_test is not None:
            n_test = check_positive_int(self.n_test, "n_test")
        elif warm is not None:
            # Inherit the warm geometry: a different test length would move
            # every evaluation cell and forfeit all cache reuse.
            n_test = int(warm.n_test)
        else:
            n_test = max(int(round(len(T) * float(self.test_fraction))), horizon)
        n_test = min(n_test, len(T) // 2)
        n_test = max(n_test, 1)
        L = len(T) - n_test
        self._full_length = L
        self._n_test_resolved = int(n_test)
        # Prefix reuse applies only when the warm geometry matches: rolling
        # cells with train+test inside the previously ranked length are
        # byte-identical to that run's cells.
        self._prefix_limit = (
            int(warm.series_length)
            if warm is not None and rolling and n_test == int(warm.n_test)
            else None
        )
        if rolling:
            T_all = T
            if self._plane is not None:
                # Register the whole series once: train prefixes and
                # rolling test windows are both zero-copy slices of it.
                T_all = self._plane.register(T)
            T1, T2 = T_all[:L], T_all[L:]
        else:
            T1, T2 = T[:L], T[L:]
            if self._plane is not None:
                # Register the splits once: every allocation below derives a
                # zero-copy (base_ref, offset) slice instead of carrying array
                # values.  register() returns the array unchanged when the
                # plane cannot pin it, transparently keeping that input
                # by-value.
                T1 = self._plane.register(T1)
                T2 = self._plane.register(T2)

        def _train(allocation: int):
            allocation = min(int(allocation), L)
            if rolling:
                # Rolling origin is inherently oldest-first: the train
                # slice is the prefix the test window rolls away from.
                return T1[:allocation]
            return self._allocation_slice(T1, allocation)

        def _test(allocation: int):
            if rolling:
                allocation = min(int(allocation), L)
                return T_all[allocation : allocation + n_test]
            return T2

        # Resolve allocation parameters.  A warm run anchors the grid to
        # the prior run's: allocations derived from the *new* length would
        # shift every cell off the cached ones.
        if self.min_allocation_size is not None:
            min_allocation = int(self.min_allocation_size)
        elif warm is not None:
            min_allocation = int(warm.min_allocation)
        else:
            min_allocation = max(L // 10, 4 * horizon, 8)
        if self.allocation_size:
            allocation_size = int(self.allocation_size)
        elif warm is not None:
            allocation_size = int(warm.allocation_size)
        else:
            allocation_size = min_allocation
        if self.fixed_allocation_cutoff:
            cutoff = int(self.fixed_allocation_cutoff)
        elif warm is not None:
            cutoff = int(warm.cutoff)
        else:
            cutoff = 5 * allocation_size
        self._grid = (min_allocation, allocation_size, cutoff)

        # Name bookkeeping (duplicate pipeline classes get an index suffix).
        self._name_counts: dict[str, int] = {}
        for pipeline in self.pipelines:
            name = getattr(pipeline, "name", None) or type(pipeline).__name__
            self._name_counts[name] = self._name_counts.get(name, 0) + 1
        names = [self._pipeline_name(p, i) for i, p in enumerate(self.pipelines)]
        templates = dict(zip(names, self.pipelines))

        evaluations = {name: PipelineEvaluation(name=name) for name in names}

        # Degenerate case: data set smaller than the minimum allocation — give
        # everything to every pipeline and rank on the full data.
        if L <= min_allocation:
            self._log("Training set smaller than min_allocation_size; full evaluation.")
            scores = self._evaluate_batch(
                [(name, templates[name], _train(L), _test(L)) for name in names],
                evaluations,
            )
            self._notify_progress("score", L)
            for name, score in zip(names, scores):
                evaluations[name].final_score = score
            # Explicit None check: a perfect forecast scores -0.0, which is
            # falsy and must not be confused with "never scored".
            ranked = sorted(
                names,
                key=lambda n: (
                    evaluations[n].final_score
                    if evaluations[n].final_score is not None
                    else -np.inf
                ),
                reverse=True,
            )
            self._finalise(T, ranked, evaluations, start_time)
            return self

        # -- 1. fixed allocation ------------------------------------------------
        # Every round is one batch: all pipelines share the same slice and
        # are independent of one another.
        num_fix_runs = max(int(cutoff / min_allocation), 1)
        for run_index in range(1, num_fix_runs + 1):
            if self._deadline is not None and self._deadline.expired:
                self._log("Budget exhausted during fixed allocation; stopping early.")
                break
            allocation = min(min_allocation * run_index, L)
            self._log(f"Fixed allocation {run_index}/{num_fix_runs}: {allocation} samples")
            train = _train(allocation)
            test = _test(allocation)
            self._evaluate_batch(
                [(name, templates[name], train, test) for name in names], evaluations
            )
            self._notify_progress("fixed", allocation)
            if allocation >= L:
                break

        for name in names:
            evaluations[name].project(L)

        # -- 2. allocation acceleration (priority queue, geometric growth) ------
        # Waves of up to ``n_jobs`` pipelines are popped from the heap and
        # evaluated as one batch.  Heap entries carry the original submission
        # order so tie-breaking — and with it the whole schedule — stays
        # deterministic on every backend.  Pipelines whose projection is
        # -inf (no finite score on any allocation: permanently broken) are
        # dropped instead of wasting further full fit cycles.
        heap: list[tuple[float, int, str]] = []
        # An exhausted budget can end the fixed phase before any round ran,
        # leaving a pipeline's allocation history empty.
        last_allocation = {
            name: (
                evaluations[name].allocation_sizes[-1]
                if evaluations[name].allocation_sizes
                else 0
            )
            for name in names
        }
        for order, name in enumerate(names):
            if np.isfinite(evaluations[name].projected_score):
                heapq.heappush(heap, (-evaluations[name].projected_score, order, name))

        while heap:
            if self._deadline is not None and self._deadline.expired:
                self._log("Budget exhausted during acceleration; stopping early.")
                break
            wave: list[tuple[int, str, int]] = []
            while heap and len(wave) < self._batch_size:
                _, order, name = heapq.heappop(heap)
                current = last_allocation[name]
                if current >= L:
                    # This pipeline has already seen (almost) all data.
                    continue
                next_allocation = int(
                    max(
                        current + allocation_size,
                        int(current * float(self.geo_increment_size)),
                    )
                )
                next_allocation = int(
                    np.ceil(next_allocation / allocation_size) * allocation_size
                )
                next_allocation = min(next_allocation, L)
                wave.append((order, name, next_allocation))
            if not wave:
                break
            self._log(
                "Acceleration wave: "
                + ", ".join(f"{name} -> {alloc}" for _, name, alloc in wave)
            )
            self._evaluate_batch(
                [
                    (name, templates[name], _train(alloc), _test(alloc))
                    for _, name, alloc in wave
                ],
                evaluations,
            )
            self._notify_progress(
                "accelerate", max(alloc for _, _, alloc in wave)
            )
            stop = False
            for order, name, alloc in wave:
                last_allocation[name] = alloc
                evaluations[name].project(L)
                if alloc < L:
                    if np.isfinite(evaluations[name].projected_score):
                        heapq.heappush(
                            heap, (-evaluations[name].projected_score, order, name)
                        )
                else:
                    # Pipeline reached the full length; stop accelerating once
                    # the top run_to_completion pipelines have reached it.
                    finished = sum(
                        1 for allocation in last_allocation.values() if allocation >= L
                    )
                    if finished >= int(self.run_to_completion):
                        stop = True
            if stop:
                break

        # -- 3. scoring: retrain the top pipelines on all of T1 ------------------
        # One final batch; a pipeline that already trained on the full split
        # during fixed allocation or acceleration is a cache hit here.
        provisional = sorted(
            names, key=lambda n: evaluations[n].projected_score, reverse=True
        )
        n_final = min(int(self.run_to_completion), len(names))
        final_names = provisional[:n_final]
        self._log("Scoring phase: retraining " + ", ".join(final_names) + " on full split")
        # Even with the budget exhausted the batch is still submitted: cache
        # hits (a pipeline that already reached the full allocation) are free
        # and the executor skips the rest under the expired deadline.
        final_scores = self._evaluate_batch(
            [(name, templates[name], _train(L), _test(L)) for name in final_names],
            evaluations,
        )
        self._notify_progress("score", L)
        for name, score in zip(final_names, final_scores):
            if (
                self._deadline is not None
                and self._deadline.expired
                and not np.isfinite(score)
            ):
                # The retrain was skipped, not evaluated: rank the pipeline
                # on its projection instead of a phantom -inf score.
                continue
            evaluations[name].final_score = score

        def _ranking_key(name: str) -> float:
            evaluation = evaluations[name]
            if evaluation.final_score is not None:
                return evaluation.final_score
            return evaluation.projected_score

        ranked = sorted(names, key=_ranking_key, reverse=True)
        self._finalise(T, ranked, evaluations, start_time)
        return self

    def _finalise(
        self,
        T: np.ndarray,
        ranked: list[str],
        evaluations: dict[str, PipelineEvaluation],
        start_time: float,
    ) -> None:
        """Retrain the winning pipeline on the full data and store results."""
        templates = {}
        for index, pipeline in enumerate(self.pipelines):
            name = self._pipeline_name(pipeline, index)
            templates[name] = pipeline

        best_pipeline = None
        for name in ranked:
            template = templates[name]
            try:
                best_pipeline = clone(template)
                if hasattr(best_pipeline, "set_horizon"):
                    best_pipeline.set_horizon(int(self.horizon))
                elif hasattr(best_pipeline, "horizon"):
                    best_pipeline.horizon = int(self.horizon)
                best_pipeline.fit(T)
                self.best_pipeline_name_ = name
                break
            except Exception:  # noqa: BLE001 - try the next-best pipeline
                best_pipeline = None
                continue

        self.ranked_names_ = ranked
        self.evaluations_ = evaluations
        self.best_pipeline_ = best_pipeline
        self.cache_stats_ = self._cache.stats if self._cache is not None else None
        self.budget_exhausted_ = bool(self._deadline is not None and self._deadline.expired)
        points: dict = {}
        for name, evaluation in evaluations.items():
            for size, score in zip(evaluation.allocation_sizes, evaluation.scores):
                if np.isfinite(score):
                    points[(name, int(size))] = float(score)
        min_allocation, allocation_size, cutoff = self._grid
        self.warm_state_ = TDaubWarmState(
            series_length=int(len(T)),
            n_test=int(self._n_test_resolved),
            horizon=int(self.horizon),
            eval_protocol=self.eval_protocol,
            min_allocation=int(min_allocation),
            allocation_size=int(allocation_size),
            cutoff=int(cutoff),
            ranked_names=list(ranked),
            points=points,
            cost_curve=list(self._cost_curve),
            cost_projection=self.cost_projection_,
            cache=self._cache,
        )
        self.result_ = TDaubResult(
            ranked_names=ranked,
            evaluations=evaluations,
            best_pipeline=best_pipeline,
            total_seconds=time.perf_counter() - start_time,
        )

    # -- estimator API ---------------------------------------------------------
    def predict(self, horizon: int | None = None) -> np.ndarray:
        """Forecast with the best pipeline selected by :meth:`fit`."""
        if getattr(self, "best_pipeline_", None) is None:
            raise InvalidParameterError("TDaub has no successfully trained pipeline.")
        return self.best_pipeline_.predict(horizon if horizon is not None else self.horizon)

    def score(self, X_true, horizon: int | None = None) -> float:
        """Score the best pipeline on held-out data (negative SMAPE)."""
        if getattr(self, "best_pipeline_", None) is None:
            raise InvalidParameterError("TDaub has no successfully trained pipeline.")
        return self.best_pipeline_.score(X_true, horizon=horizon)
