"""AutoAITS: the zero-configuration orchestrator (paper figure 2).

Given a 2-D array of time series, :class:`AutoAITS` transparently performs
every stage of the paper's architecture:

1. **Quality check** — validate the input, detect missing/negative values,
   clean the data (interpolation) and decide which transforms are allowed.
2. **Zero Model** — train the trivial last-value baseline immediately so a
   usable model exists from the first seconds.
3. **Look-back window computation** — discover candidate look-back lengths
   from timestamps and values (skipped when the user supplies one).
4. **Pipeline generation** — instantiate the pipeline inventory with the
   chosen look-back, horizon and transform gates.
5. **T-Daub** — rank pipelines on reverse data allocations of the training
   split, keeping a holdout for reported evaluation.
6. **Final training** — retrain the best pipeline(s) on the full training
   data and report holdout accuracy and timing.

The public API is scikit-learn style: ``fit(X)``, ``predict(horizon)``,
``score(X_true)``; columns of ``X`` are individual time series.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .._validation import as_2d_array, check_fraction, check_horizon
from ..exceptions import InvalidParameterError, NotFittedError
from ..forecasters.naive import ZeroModelForecaster
from ..metrics.errors import smape
from .base import BaseForecaster
from .lookback import LookbackDiscovery
from .progress import ProgressReporter
from .quality import check_data_quality, clean_data
from .registry import PipelineRegistry
from .tdaub import TDaub

__all__ = ["AutoAITS", "HoldoutReport"]


@dataclass
class HoldoutReport:
    """Accuracy and timing of the selected pipeline(s) on the holdout split."""

    pipeline_name: str
    smape: float
    train_seconds: float
    predict_seconds: float
    horizon: int


class AutoAITS(BaseForecaster):
    """Zero-conf AutoAI for time series forecasting.

    Parameters
    ----------
    prediction_horizon:
        Number of future values to predict (>= 1).
    lookback_window:
        Look-back window length for ML/DL pipelines.  ``None`` (default)
        triggers the automatic discovery of section 4.1.
    max_look_back:
        Optional upper bound handed to the look-back discovery.
    holdout_fraction:
        Fraction of the data kept out of pipeline selection and used only for
        the reported evaluation (paper: 20%).
    pipeline_names:
        Subset of registry pipelines to consider (default: all ten).
    include_deep_learning:
        Also include the MLP / N-BEATS-like pipelines in the inventory.
    run_to_completion:
        Number of top pipelines retrained on the full training split by T-Daub.
    positive_forecasts:
        Clip forecasts at zero (useful for count-like data); off by default.
    verbose:
        Print progress messages (quality check, look-back, T-Daub, holdout).
    n_jobs:
        Number of pipeline evaluations T-Daub schedules concurrently (1 =
        the paper's sequential algorithm).  ``n_jobs`` also sets the width
        of T-Daub's acceleration waves, so two runs with the *same*
        ``n_jobs`` rank identically on any backend; different ``n_jobs``
        values explore slightly different allocation schedules.
    executor:
        Execution backend handed to T-Daub: ``None`` (auto), ``"serial"``,
        ``"threads"``, ``"processes"`` or a ``repro.exec.BaseExecutor``.
    cache_dir:
        Directory of a persistent evaluation store handed to T-Daub.  Fits
        of identical (pipeline, data slice, horizon) combinations are
        served from disk across processes and runs — point several
        benchmark shards at one shared directory to split the work.
    store:
        The persistent evaluation store itself (overrides ``cache_dir``):
        a :class:`~repro.store.StoreBackend` or a store location — an
        ``http://`` object-store URL or a directory path — for shards
        that share no filesystem.
    dataplane:
        Hand T-Daub the execution backend's zero-copy data plane (the
        default): the training split is registered with the engine once
        and every evaluation task ships an ``ArrayRef`` slice instead of
        pickled arrays.  ``False`` forces by-value task payloads.
    budget:
        Wall-clock budget in seconds for the T-Daub ranking phase,
        enforced cooperatively on every execution backend.  When it runs
        out the ranking falls back to the learning-curve projections
        gathered so far (the fitted model is still delivered).
    progress_callback:
        Forwarded verbatim to T-Daub (see
        :class:`~repro.core.tdaub.TDaub`): per-round progress and
        learning-curve cost projections, doubling as an in-fit liveness
        heartbeat for schedulers watching this fit from outside.
    """

    def __init__(
        self,
        prediction_horizon: int = 1,
        lookback_window: int | None = None,
        max_look_back: int | None = None,
        holdout_fraction: float = 0.2,
        pipeline_names: list[str] | None = None,
        include_deep_learning: bool = False,
        min_allocation_size: int | None = None,
        geo_increment_size: float = 2.0,
        run_to_completion: int = 1,
        positive_forecasts: bool = False,
        verbose: bool = False,
        random_state: int | None = 0,
        n_jobs: int | None = None,
        executor=None,
        cache_dir: str | None = None,
        store=None,
        dataplane: bool = True,
        budget: float | None = None,
        progress_callback=None,
    ):
        self.prediction_horizon = prediction_horizon
        self.lookback_window = lookback_window
        self.max_look_back = max_look_back
        self.holdout_fraction = holdout_fraction
        self.pipeline_names = pipeline_names
        self.include_deep_learning = include_deep_learning
        self.min_allocation_size = min_allocation_size
        self.geo_increment_size = geo_increment_size
        self.run_to_completion = run_to_completion
        self.positive_forecasts = positive_forecasts
        self.verbose = verbose
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.executor = executor
        self.cache_dir = cache_dir
        self.store = store
        self.dataplane = dataplane
        self.budget = budget
        self.progress_callback = progress_callback

    # -- orchestration ---------------------------------------------------------
    def fit(self, X, y=None, timestamps=None) -> "AutoAITS":
        """Run the full zero-conf workflow on the input series."""
        horizon = check_horizon(self.prediction_horizon)
        check_fraction(self.holdout_fraction, "holdout_fraction")
        start_time = time.perf_counter()
        progress = ProgressReporter(verbose=self.verbose)
        self.progress_ = progress

        # 1. Quality check and cleaning.
        progress.report("quality-check", "validating input data")
        X = as_2d_array(X, name="input data")
        self.quality_report_ = check_data_quality(X)
        for message in self.quality_report_.messages:
            progress.report("quality-check", message)
        data = clean_data(X, self.quality_report_)

        # 2. Zero Model: an immediately available baseline.
        progress.report("zero-model", "training last-value baseline")
        self.zero_model_ = ZeroModelForecaster(horizon=horizon).fit(data)

        # Holdout split (last 20% of the data is never shown to T-Daub).
        n_holdout = max(int(round(len(data) * float(self.holdout_fraction))), horizon)
        n_holdout = min(n_holdout, len(data) // 2)
        if len(data) - n_holdout < 8:
            raise InvalidParameterError(
                f"Not enough data ({len(data)} samples) to reserve a holdout of "
                f"{n_holdout} samples."
            )
        train, holdout = data[: len(data) - n_holdout], data[len(data) - n_holdout :]
        self._train_data = train
        self._full_data = data

        # 3. Look-back window computation (skipped when the user provides one).
        if self.lookback_window is not None:
            lookback = int(self.lookback_window)
            progress.report("look-back", f"user supplied look-back window: {lookback}")
            self.lookback_result_ = None
        else:
            discovery = LookbackDiscovery(
                max_look_back=self.max_look_back, random_state=self.random_state
            )
            self.lookback_result_ = discovery.discover(train, timestamps=timestamps)
            lookback = self.lookback_result_.selected
            progress.report(
                "look-back",
                f"discovered look-back window {lookback} "
                f"(candidates: {self.lookback_result_.candidates})",
            )
        self.lookback_ = lookback

        # 4. Pipeline generation.
        registry = PipelineRegistry(include_optional=self.include_deep_learning)
        self.registry_ = registry
        pipelines = registry.create_all(
            lookback=lookback,
            horizon=horizon,
            allow_log=self.quality_report_.allow_log_transforms,
            names=self.pipeline_names,
        )
        progress.report("pipeline-generation", f"instantiated {len(pipelines)} pipelines")

        # 5. T-Daub ranking and selection on the training split.
        tdaub = TDaub(
            pipelines=pipelines,
            min_allocation_size=self.min_allocation_size,
            geo_increment_size=self.geo_increment_size,
            run_to_completion=self.run_to_completion,
            horizon=horizon,
            verbose=self.verbose,
            n_jobs=self.n_jobs,
            executor=self.executor,
            cache_dir=self.cache_dir,
            store=self.store,
            dataplane=self.dataplane,
            budget=self.budget,
            progress_callback=self.progress_callback,
        )
        progress.report("t-daub", "ranking pipelines with reverse data allocation")
        tdaub.fit(train)
        self.tdaub_ = tdaub
        self.budget_exhausted_ = getattr(tdaub, "budget_exhausted_", False)
        self.ranked_pipelines_ = tdaub.ranked_names_
        self.evaluations_ = tdaub.evaluations_
        progress.report(
            "t-daub",
            "ranking: " + ", ".join(tdaub.ranked_names_[: min(3, len(tdaub.ranked_names_))]),
        )

        # 6. Evaluate the winner on the holdout, then retrain it on all data.
        best_name = tdaub.best_pipeline_name_ if tdaub.best_pipeline_ is not None else None
        if best_name is None:
            progress.report("holdout", "all pipelines failed; falling back to Zero Model")
            self.best_pipeline_ = self.zero_model_
            self.best_pipeline_name_ = "ZeroModel"
            self.holdout_report_ = HoldoutReport(
                pipeline_name="ZeroModel",
                smape=smape(holdout, self.zero_model_.predict(len(holdout))),
                train_seconds=0.0,
                predict_seconds=0.0,
                horizon=horizon,
            )
        else:
            predict_start = time.perf_counter()
            holdout_forecast = tdaub.best_pipeline_.predict(len(holdout))
            predict_seconds = time.perf_counter() - predict_start
            holdout_smape = smape(holdout, holdout_forecast)
            train_seconds = tdaub.evaluations_[best_name].train_seconds
            self.holdout_report_ = HoldoutReport(
                pipeline_name=best_name,
                smape=holdout_smape,
                train_seconds=train_seconds,
                predict_seconds=predict_seconds,
                horizon=horizon,
            )
            progress.report(
                "holdout",
                f"best pipeline {best_name}: SMAPE={holdout_smape:.2f} "
                f"(train {train_seconds:.2f}s)",
            )

            # Final refit on the complete cleaned data set so the deployed
            # model uses every observation.
            progress.report("final-training", f"retraining {best_name} on all data")
            final_pipeline = registry.create(
                best_name,
                lookback=lookback,
                horizon=horizon,
                allow_log=self.quality_report_.allow_log_transforms,
            )
            try:
                final_pipeline.fit(data)
                self.best_pipeline_ = final_pipeline
            except Exception:  # noqa: BLE001 - keep the T-Daub-trained model
                self.best_pipeline_ = tdaub.best_pipeline_
            self.best_pipeline_name_ = best_name

        self.total_seconds_ = time.perf_counter() - start_time
        progress.report("done", f"total {self.total_seconds_:.2f}s")
        return self

    # -- prediction --------------------------------------------------------------
    def predict(self, horizon: int | None = None) -> np.ndarray:
        """Forecast future values with the selected pipeline.

        Returns a 2-D array with ``horizon`` rows and one column per input
        series (paper section 3 data semantics).
        """
        if not hasattr(self, "best_pipeline_"):
            raise NotFittedError("AutoAITS")
        horizon = check_horizon(
            horizon if horizon is not None else self.prediction_horizon
        )
        forecast = np.asarray(self.best_pipeline_.predict(horizon), dtype=float)
        if forecast.ndim == 1:
            forecast = forecast.reshape(-1, 1)
        if self.positive_forecasts:
            forecast = np.clip(forecast, 0.0, None)
        return forecast

    def score(self, X_true, horizon: int | None = None) -> float:
        """Negative SMAPE of forecasts against ``X_true`` (higher is better)."""
        X_true = as_2d_array(X_true, name="X_true")
        steps = horizon if horizon is not None else len(X_true)
        forecast = self.predict(steps)
        rows = min(len(forecast), len(X_true))
        return -smape(X_true[:rows], forecast[:rows])

    # -- reporting ----------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable summary of the run (ranking plus holdout accuracy)."""
        if not hasattr(self, "best_pipeline_"):
            raise NotFittedError("AutoAITS")
        rows = self.tdaub_.result_.ranking_table() if hasattr(self, "tdaub_") else []
        lines = [
            f"AutoAI-TS run summary ({self.total_seconds_:.2f}s total)",
            f"  look-back window : {self.lookback_}",
            f"  best pipeline    : {self.best_pipeline_name_}",
            f"  holdout SMAPE    : {self.holdout_report_.smape:.3f}",
            "  pipeline ranking :",
        ]
        for rank, (name, score, seconds) in enumerate(rows, start=1):
            lines.append(f"    {rank:>2d}. {name:<40s} score={score:8.3f}  {seconds:7.2f}s")
        return "\n".join(lines)
