"""Input data quality check and cleaning (first stage of figure 2).

"Once the data is provided to the system, it performs an initial quality
check of the input data which includes looking for missing or NaN values,
unexpected characters or values such as strings in the time series, it also
checks if there are negative values so that system can disable certain
transformations such as log transform."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_2d_array
from ..exceptions import DataQualityError
from ..transforms.impute import interpolate_series

__all__ = ["QualityReport", "check_data_quality", "clean_data"]


@dataclass
class QualityReport:
    """Findings of the quality check, used to gate transforms and pipelines.

    Attributes
    ----------
    n_samples, n_series:
        Shape of the (canonicalised) input.
    has_missing:
        True when NaNs were found (they are interpolated by :func:`clean_data`).
    has_negative:
        True when negative values are present; log/Box-Cox style transforms
        are disabled in that case.
    constant_series:
        Indices of series with zero variance (some models degrade to naive
        forecasts on them).
    missing_fraction:
        Fraction of NaN cells in the raw input.
    messages:
        Human readable notes displayed in the progress output.
    """

    n_samples: int
    n_series: int
    has_missing: bool
    has_negative: bool
    constant_series: list[int] = field(default_factory=list)
    missing_fraction: float = 0.0
    messages: list[str] = field(default_factory=list)

    @property
    def allow_log_transforms(self) -> bool:
        """Whether log/Box-Cox transforms may be used on this data."""
        return not self.has_negative


def check_data_quality(X, min_samples: int = 8) -> QualityReport:
    """Validate the input array and summarise its quality.

    Raises
    ------
    DataQualityError
        When the input is not numeric, is empty, is shorter than
        ``min_samples`` or consists entirely of NaNs.
    """
    array = as_2d_array(X, name="input data")
    n_samples, n_series = array.shape

    if n_samples < min_samples:
        raise DataQualityError(
            f"Time series of length {n_samples} is too short; at least "
            f"{min_samples} observations are required."
        )

    nan_mask = np.isnan(array)
    if nan_mask.all():
        raise DataQualityError("Input data contains only missing values.")

    missing_fraction = float(nan_mask.mean())
    has_missing = bool(nan_mask.any())
    has_negative = bool(np.nanmin(array) < 0)

    constant_series = []
    for column in range(n_series):
        values = array[:, column]
        finite = values[np.isfinite(values)]
        if len(finite) == 0 or np.nanmax(finite) - np.nanmin(finite) == 0:
            constant_series.append(column)

    messages = []
    if has_missing:
        messages.append(
            f"Missing values detected ({missing_fraction:.1%}); interpolation will be applied."
        )
    if has_negative:
        messages.append("Negative values detected; log-style transforms disabled.")
    if constant_series:
        messages.append(f"Constant series detected at columns {constant_series}.")

    return QualityReport(
        n_samples=n_samples,
        n_series=n_series,
        has_missing=has_missing,
        has_negative=has_negative,
        constant_series=constant_series,
        missing_fraction=missing_fraction,
        messages=messages,
    )


def clean_data(X, report: QualityReport | None = None) -> np.ndarray:
    """Return a cleaned copy of the data (NaNs interpolated column-wise)."""
    array = as_2d_array(X, name="input data")
    if report is None:
        report = check_data_quality(array)
    if not report.has_missing:
        return array.copy()
    columns = [interpolate_series(array[:, j], "linear") for j in range(array.shape[1])]
    return np.column_stack(columns)
