"""Minimal scikit-learn style estimator framework.

The paper (section 3, figure 1) exposes every model through a common
``fit`` / ``predict`` / ``score`` contract and every transform through
``fit`` / ``transform`` (plus ``inverse_transform`` for reversible ones).
This module provides the base classes, parameter introspection
(``get_params`` / ``set_params``) and :func:`clone`, which the orchestrator
relies on to create fresh, unfitted copies of each pipeline for every
T-Daub allocation.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any, Dict, Iterator, Tuple

import numpy as np

from ..exceptions import InvalidParameterError, NotFittedError

__all__ = [
    "BaseEstimator",
    "BaseForecaster",
    "BaseTransformer",
    "BaseRegressor",
    "clone",
    "check_is_fitted",
]


class BaseEstimator:
    """Base class providing parameter introspection for all estimators.

    Subclasses must declare every hyper-parameter as an explicit keyword
    argument of ``__init__`` and store it under the same attribute name —
    the same convention scikit-learn uses — so that :func:`clone` and grid
    search work uniformly across the library.
    """

    @classmethod
    def _get_param_names(cls) -> Tuple[str, ...]:
        init_signature = inspect.signature(cls.__init__)
        names = [
            name
            for name, param in init_signature.parameters.items()
            if name != "self" and param.kind != param.VAR_KEYWORD and param.kind != param.VAR_POSITIONAL
        ]
        return tuple(sorted(names))

    def get_params(self, deep: bool = True) -> Dict[str, Any]:
        """Return the estimator's hyper-parameters as a dictionary.

        When ``deep`` is True, parameters of nested estimators are included
        using the ``<component>__<parameter>`` convention.
        """
        params: Dict[str, Any] = {}
        for name in self._get_param_names():
            value = getattr(self, name)
            params[name] = value
            if deep and isinstance(value, BaseEstimator):
                for sub_name, sub_value in value.get_params(deep=True).items():
                    params[f"{name}__{sub_name}"] = sub_value
        return params

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyper-parameters, supporting the nested ``a__b`` convention."""
        if not params:
            return self
        valid = set(self._get_param_names())
        nested: Dict[str, Dict[str, Any]] = {}
        for key, value in params.items():
            name, delim, sub_key = key.partition("__")
            if name not in valid:
                raise InvalidParameterError(
                    f"Invalid parameter {name!r} for estimator "
                    f"{type(self).__name__}. Valid parameters are: {sorted(valid)}."
                )
            if delim:
                nested.setdefault(name, {})[sub_key] = value
            else:
                setattr(self, name, value)
        for name, sub_params in nested.items():
            sub_estimator = getattr(self, name)
            if not isinstance(sub_estimator, BaseEstimator):
                raise InvalidParameterError(
                    f"Cannot set nested parameters on non-estimator attribute {name!r}."
                )
            sub_estimator.set_params(**sub_params)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params(deep=False).items()))
        return f"{type(self).__name__}({params})"

    # -- fitted-state helpers ------------------------------------------------
    def _fitted_attributes(self) -> Iterator[str]:
        return (
            name
            for name in vars(self)
            if name.endswith("_") and not name.startswith("__") and not name.endswith("__")
        )

    @property
    def is_fitted(self) -> bool:
        """True when at least one fitted attribute (trailing underscore) exists."""
        return any(True for _ in self._fitted_attributes())


def check_is_fitted(estimator: BaseEstimator, attributes: Tuple[str, ...] = ()) -> None:
    """Raise :class:`NotFittedError` unless the estimator has been fitted."""
    if attributes:
        fitted = all(hasattr(estimator, attr) for attr in attributes)
    else:
        fitted = estimator.is_fitted
    if not fitted:
        raise NotFittedError(type(estimator).__name__)


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return a new unfitted estimator with the same hyper-parameters.

    Nested estimators are cloned recursively; fitted state is dropped.
    Lists/tuples of estimators (e.g. pipeline steps) are cloned element-wise.
    """
    if isinstance(estimator, (list, tuple)):
        return type(estimator)(clone(item) for item in estimator)
    if not isinstance(estimator, BaseEstimator):
        return copy.deepcopy(estimator)
    params = estimator.get_params(deep=False)
    cloned_params = {}
    for name, value in params.items():
        if isinstance(value, BaseEstimator):
            cloned_params[name] = clone(value)
        elif isinstance(value, (list, tuple)) and any(
            isinstance(item, BaseEstimator) for item in value
        ):
            cloned_params[name] = type(value)(clone(item) for item in value)
        else:
            cloned_params[name] = copy.deepcopy(value)
    return type(estimator)(**cloned_params)


class BaseForecaster(BaseEstimator):
    """Base class for time series forecasters.

    Implements the API of figure 1 in the paper: ``fit(X)`` learns from a
    2-D array whose columns are time series, ``predict(horizon)`` returns a
    2-D array with ``horizon`` rows (future values) and one column per input
    series, and ``score`` evaluates SMAPE-based accuracy on held-out data.

    **Thread-safety contract**: forecasters are *read-only after fit* —
    ``predict`` (and a pipeline's ``inverse_transform`` chain) must not
    mutate fitted state, so any number of threads may call ``predict`` on
    one fitted estimator concurrently.  The serving layer's micro-batcher
    relies on this to overlap flushes of a hot model on its worker pool.
    Every in-tree predictor honors the contract (rolled windows and
    recursive forecasts work on local copies; verified by an AST audit of
    ``self`` writes plus the concurrency regression test in
    ``tests/test_serve.py``); a custom forecaster that must mutate state
    in ``predict`` has to do its own locking and should not be served.
    """

    #: default number of future steps produced when ``predict`` is called
    #: without an explicit horizon.
    default_horizon: int = 1

    #: True when :meth:`update` folds new observations into the fitted
    #: state from sufficient statistics in O(len(X_new)); False means the
    #: default full-refit fallback below.
    supports_incremental_update: bool = False

    def fit(self, X, y=None) -> "BaseForecaster":  # pragma: no cover - interface
        raise NotImplementedError

    def update(self, X_new, X_full=None) -> "BaseForecaster":
        """Fold new trailing observations into the fitted state.

        ``X_new`` holds only the rows that arrived *after* the data this
        forecaster was fitted (or last updated) on, in temporal order.
        Forecasters whose math allows it override this with a real
        sufficient-statistics update — O(len(X_new)) work, parity with a
        cold refit asserted by tests — and set
        ``supports_incremental_update``.  This base implementation is the
        verified fallback: a full refit on ``X_full``, the complete series
        including ``X_new`` (callers that own an arrival buffer always
        have it).  It raises when ``X_full`` is missing rather than guess
        at history the estimator never stored.
        """
        check_is_fitted(self)
        if X_full is None:
            raise InvalidParameterError(
                f"{type(self).__name__} has no incremental update; pass "
                "X_full (the complete series including X_new) to use the "
                "full-refit fallback."
            )
        return self.fit(X_full)

    def predict(self, horizon: int | None = None) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def score(self, X_true, horizon: int | None = None) -> float:
        """Return the negative SMAPE of forecasts against ``X_true``.

        Higher is better (0 is a perfect forecast), which lets T-Daub treat
        every pipeline score uniformly as "larger is better".
        """
        from ..metrics.errors import smape

        X_true = np.asarray(X_true, dtype=float)
        if X_true.ndim == 1:
            X_true = X_true.reshape(-1, 1)
        steps = horizon if horizon is not None else X_true.shape[0]
        predictions = self.predict(steps)
        predictions = np.asarray(predictions, dtype=float)
        if predictions.ndim == 1:
            predictions = predictions.reshape(-1, 1)
        rows = min(len(predictions), len(X_true))
        return -smape(X_true[:rows], predictions[:rows])

    @property
    def name(self) -> str:
        """Human readable name used by the registry and reports."""
        return type(self).__name__


class BaseTransformer(BaseEstimator):
    """Base class for data transformers.

    Stateless transforms (log, Box-Cox, ...) ignore ``fit``; stateful
    transforms (difference, flatten, ...) remember what they need in order
    to reverse the operation at prediction time (paper section 3).
    """

    #: whether the transformer retains state that must be reversed in order
    #: (stateful transforms are inverted before stateless ones).
    stateful: bool = False

    def fit(self, X, y=None) -> "BaseTransformer":
        return self

    def transform(self, X) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X, y).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        """Reverse the transformation; identity unless overridden."""
        return np.asarray(X, dtype=float)


class BaseRegressor(BaseEstimator):
    """Base class for tabular (IID) regressors used inside ML pipelines.

    These follow the classic supervised contract ``fit(X, y)`` /
    ``predict(X)`` and are wrapped by window-based forecasters which convert
    the time series into a supervised problem.
    """

    def fit(self, X, y) -> "BaseRegressor":  # pragma: no cover - interface
        raise NotImplementedError

    def predict(self, X) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def score(self, X, y) -> float:
        """Coefficient of determination (R^2) of predictions on ``X``."""
        y = np.asarray(y, dtype=float).ravel()
        predictions = np.asarray(self.predict(X), dtype=float).ravel()
        ss_res = float(np.sum((y - predictions) ** 2))
        ss_tot = float(np.sum((y - np.mean(y)) ** 2))
        if ss_tot == 0.0:
            return 0.0 if ss_res > 0 else 1.0
        return 1.0 - ss_res / ss_tot
