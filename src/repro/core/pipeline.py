"""Forecasting pipeline: transforms + forecaster with automatic inversion.

"The transformed data is passed to ML models for training.  At prediction
time, we need to reverse transform the data output from the model to the
original form and scale.  Therefore, inverse transformations are applied in
the reverse order of application, i.e., the stateful inverse transformation
followed by stateless inverse transformation." (paper section 3)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import as_2d_array, check_horizon
from ..exceptions import PipelineExecutionError
from .base import BaseForecaster, BaseTransformer, check_is_fitted, clone

__all__ = ["ForecastingPipeline"]


class ForecastingPipeline(BaseForecaster):
    """Compose transformers with a final forecaster under one estimator API.

    Parameters
    ----------
    steps:
        Sequence of ``(name, transformer)`` pairs applied in order before the
        forecaster.  Transformers whose :attr:`stateful` flag is False are
        considered stateless (applied first, inverted last).
    forecaster:
        The final estimator implementing ``fit``/``predict``.
    name_override:
        Optional display name; defaults to the forecaster's name prefixed by
        the transform names (e.g. ``"FlattenAutoEnsembler, log"``).
    """

    def __init__(
        self,
        steps: Sequence[tuple[str, BaseTransformer]] = (),
        forecaster: BaseForecaster | None = None,
        name_override: str | None = None,
    ):
        self.steps = list(steps)
        self.forecaster = forecaster
        self.name_override = name_override

    @property
    def name(self) -> str:
        if self.name_override:
            return self.name_override
        transform_names = [step_name for step_name, _ in self.steps]
        base = self.forecaster.name if self.forecaster is not None else "pipeline"
        if transform_names:
            return f"{base}, {'+'.join(transform_names)}"
        return base

    def fit(self, X, y=None) -> "ForecastingPipeline":
        if self.forecaster is None:
            raise PipelineExecutionError(self.name, "fit", ValueError("missing forecaster"))
        X = as_2d_array(X)
        transformed = X
        self.fitted_steps_ = []
        try:
            for step_name, transformer in self.steps:
                fitted = clone(transformer)
                transformed = fitted.fit_transform(transformed)
                self.fitted_steps_.append((step_name, fitted))
            self.fitted_forecaster_ = clone(self.forecaster)
            self.fitted_forecaster_.fit(transformed)
        except PipelineExecutionError:
            raise
        except Exception as exc:  # noqa: BLE001 - converted into a library error
            raise PipelineExecutionError(self.name, "fit", exc) from exc
        self._n_series = X.shape[1]
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("fitted_forecaster_",))
        horizon = check_horizon(horizon if horizon is not None else self.default_horizon)
        try:
            predictions = self.fitted_forecaster_.predict(horizon)
            predictions = np.asarray(predictions, dtype=float)
            if predictions.ndim == 1:
                predictions = predictions.reshape(-1, 1)
            # Inverse transforms in reverse order of application.
            for _, transformer in reversed(self.fitted_steps_):
                predictions = transformer.inverse_transform(predictions)
        except PipelineExecutionError:
            raise
        except Exception as exc:  # noqa: BLE001 - converted into a library error
            raise PipelineExecutionError(self.name, "predict", exc) from exc
        return predictions

    def set_horizon(self, horizon: int) -> "ForecastingPipeline":
        """Propagate a prediction horizon to the wrapped forecaster if supported."""
        if self.forecaster is not None and hasattr(self.forecaster, "horizon"):
            self.forecaster.horizon = int(horizon)
        self.default_horizon = int(horizon)
        return self

    def set_lookback(self, lookback: int) -> "ForecastingPipeline":
        """Propagate a look-back window length to the wrapped forecaster if supported."""
        if self.forecaster is not None and hasattr(self.forecaster, "lookback"):
            self.forecaster.lookback = int(lookback)
        return self
