"""Original Daub selector (oldest-first allocation) for ablation studies.

The paper's T-Daub differs from Daub (Sabharwal, Samulowitz & Tesauro, AAAI
2015) in one key way: data is allocated in *reverse* order so every
allocation contains the most recent observations.  Keeping the original
oldest-first variant around lets the ablation benchmark quantify how much
the reverse allocation matters on time series data.
"""

from __future__ import annotations

from typing import Sequence

from .base import BaseForecaster
from .tdaub import TDaub

__all__ = ["Daub"]


class Daub(TDaub):
    """Incremental data allocation with the original oldest-first ordering."""

    def __init__(
        self,
        pipelines: Sequence[BaseForecaster] = (),
        min_allocation_size: int | None = None,
        allocation_size: int | None = None,
        fixed_allocation_cutoff: int | None = None,
        geo_increment_size: float = 2.0,
        run_to_completion: int = 1,
        test_fraction: float = 0.2,
        horizon: int = 1,
        scorer=None,
        verbose: bool = False,
        n_jobs: int | None = None,
        executor=None,
        memoize: bool = True,
        cache_dir: str | None = None,
        store=None,
        budget: float | None = None,
    ):
        super().__init__(
            pipelines=pipelines,
            min_allocation_size=min_allocation_size,
            allocation_size=allocation_size,
            fixed_allocation_cutoff=fixed_allocation_cutoff,
            geo_increment_size=geo_increment_size,
            run_to_completion=run_to_completion,
            test_fraction=test_fraction,
            horizon=horizon,
            allocation_direction="oldest_first",
            scorer=scorer,
            verbose=verbose,
            n_jobs=n_jobs,
            executor=executor,
            memoize=memoize,
            cache_dir=cache_dir,
            store=store,
            budget=budget,
        )

    @classmethod
    def _get_param_names(cls):
        # ``allocation_direction`` is fixed by this subclass and therefore not
        # exposed as a constructor parameter.
        return (
            "pipelines",
            "min_allocation_size",
            "allocation_size",
            "fixed_allocation_cutoff",
            "geo_increment_size",
            "run_to_completion",
            "test_fraction",
            "horizon",
            "scorer",
            "verbose",
            "n_jobs",
            "executor",
            "memoize",
            "cache_dir",
            "store",
            "budget",
        )
