"""Core of the AutoAI-TS reproduction: estimator framework and orchestrator."""

from .autoai_ts import AutoAITS, HoldoutReport
from .base import (
    BaseEstimator,
    BaseForecaster,
    BaseRegressor,
    BaseTransformer,
    check_is_fitted,
    clone,
)
from .daub import Daub
from .lookback import DEFAULT_LOOKBACK, LookbackDiscovery, LookbackResult
from .pipeline import ForecastingPipeline
from .progress import ProgressReporter
from .quality import QualityReport, check_data_quality, clean_data
from .registry import PAPER_PIPELINE_NAMES, PipelineRegistry, default_pipeline_inventory
from .tdaub import PipelineEvaluation, TDaub, TDaubResult, TDaubWarmState

__all__ = [
    "AutoAITS",
    "HoldoutReport",
    "BaseEstimator",
    "BaseForecaster",
    "BaseRegressor",
    "BaseTransformer",
    "check_is_fitted",
    "clone",
    "Daub",
    "LookbackDiscovery",
    "LookbackResult",
    "DEFAULT_LOOKBACK",
    "ForecastingPipeline",
    "ProgressReporter",
    "QualityReport",
    "check_data_quality",
    "clean_data",
    "PipelineRegistry",
    "default_pipeline_inventory",
    "PAPER_PIPELINE_NAMES",
    "TDaub",
    "TDaubResult",
    "TDaubWarmState",
    "PipelineEvaluation",
]
