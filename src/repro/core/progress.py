"""Progress reporting for pipeline evaluation.

"During T-Daub evaluation of pipelines, user is provided with the overall
progress and performance of the evaluated pipelines, such progress is
displayed on command line as well as on the web-UI" (paper section 4).  The
reproduction keeps the command-line half: a lightweight reporter that the
orchestrator calls at each stage and that renders a ranking table at the
end.  It doubles as a structured event log the tests can inspect.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import TextIO

__all__ = ["ProgressReporter", "ProgressEvent"]


@dataclass
class ProgressEvent:
    """One progress record: a stage label, message and timestamp offset."""

    stage: str
    message: str
    elapsed_seconds: float


@dataclass
class ProgressReporter:
    """Collects progress events and optionally echoes them to a stream."""

    verbose: bool = False
    stream: TextIO = field(default_factory=lambda: sys.stdout)
    events: list[ProgressEvent] = field(default_factory=list)
    _start: float = field(default_factory=time.perf_counter)

    def report(self, stage: str, message: str) -> None:
        """Record (and optionally print) one progress message."""
        event = ProgressEvent(
            stage=stage,
            message=message,
            elapsed_seconds=time.perf_counter() - self._start,
        )
        self.events.append(event)
        if self.verbose:
            print(f"[{event.elapsed_seconds:7.2f}s] {stage:<22s} {message}", file=self.stream)

    def stages(self) -> list[str]:
        """Distinct stage labels in the order they were first reported."""
        seen: list[str] = []
        for event in self.events:
            if event.stage not in seen:
                seen.append(event.stage)
        return seen

    def render_ranking(self, rows: list[tuple[str, float, float]]) -> str:
        """Format a pipeline ranking table (name, score, seconds)."""
        lines = [f"{'rank':>4s}  {'pipeline':<40s} {'score':>10s} {'seconds':>9s}"]
        for rank, (name, score, seconds) in enumerate(rows, start=1):
            lines.append(f"{rank:>4d}  {name:<40s} {score:>10.4f} {seconds:>9.2f}")
        table = "\n".join(lines)
        if self.verbose:
            print(table, file=self.stream)
        return table
