"""Reproduction of "AutoAI-TS: AutoAI for Time Series Forecasting" (SIGMOD 2021).

The package is organised into substrates (``ml``, ``forecasters``,
``hybrid``, ``dl``, ``transforms``, ``stats``, ``timeutils``), the core
zero-conf system (``core``: AutoAITS, T-Daub, look-back discovery, pipeline
registry), the execution engine (``exec``: serial/thread/process backends
and evaluation memoization), and the evaluation machinery (``metrics``,
``data``, ``baselines``, ``benchmarking``).

Quickstart
----------
>>> import numpy as np
>>> from repro import AutoAITS
>>> series = np.sin(np.arange(200) / 5.0) + np.arange(200) * 0.01
>>> model = AutoAITS(prediction_horizon=12).fit(series)
>>> forecast = model.predict(12)          # shape (12, 1)
"""

from .core.autoai_ts import AutoAITS
from .core.base import clone
from .core.pipeline import ForecastingPipeline
from .core.registry import PipelineRegistry, default_pipeline_inventory
from .core.tdaub import TDaub
from .metrics.errors import smape

__version__ = "0.1.0"

__all__ = [
    "AutoAITS",
    "TDaub",
    "ForecastingPipeline",
    "PipelineRegistry",
    "default_pipeline_inventory",
    "clone",
    "smape",
    "__version__",
]
