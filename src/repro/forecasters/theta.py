"""Theta method forecaster.

Not part of the paper's ten-pipeline inventory but included as an optional
pipeline (the paper notes the system "can incorporate any other type of
model family without requiring any changes"), and used by the ablation
benchmarks as an additional cheap statistical candidate.  The classic
Theta(0, 2) decomposition is equivalent to simple exponential smoothing with
drift, which is how it is implemented here.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon
from ..core.base import BaseForecaster, check_is_fitted
from .ets import SimpleExponentialSmoothing

__all__ = ["ThetaForecaster"]


class ThetaForecaster(BaseForecaster):
    """Theta(0, 2) method: SES forecast plus half the linear trend slope."""

    def __init__(self, horizon: int = 1):
        self.horizon = horizon

    def fit(self, X, y=None) -> "ThetaForecaster":
        X = as_2d_array(X)
        self.n_series_ = X.shape[1]
        self._ses = SimpleExponentialSmoothing(horizon=self.horizon).fit(X)

        # Linear trend slope per series (theta line with theta = 2 doubles the
        # curvature; its mean contribution reduces to half the OLS slope).
        time_index = np.arange(len(X), dtype=float)
        centered_time = time_index - time_index.mean()
        denominator = float(np.dot(centered_time, centered_time))
        slopes = []
        for j in range(X.shape[1]):
            series = X[:, j]
            if denominator == 0:
                slopes.append(0.0)
            else:
                slopes.append(float(np.dot(centered_time, series - series.mean()) / denominator))
        self.slopes_ = np.array(slopes)
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("slopes_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        ses_forecast = self._ses.predict(horizon)
        steps = np.arange(1, horizon + 1, dtype=float).reshape(-1, 1)
        return ses_forecast + 0.5 * self.slopes_ * steps

    @property
    def name(self) -> str:
        return "Theta"
