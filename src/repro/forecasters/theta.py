"""Theta method forecaster.

Not part of the paper's ten-pipeline inventory but included as an optional
pipeline (the paper notes the system "can incorporate any other type of
model family without requiring any changes"), and used by the ablation
benchmarks as an additional cheap statistical candidate.  The classic
Theta(0, 2) decomposition is equivalent to simple exponential smoothing with
drift, which is how it is implemented here.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon
from ..core.base import BaseForecaster, check_is_fitted
from .ets import SimpleExponentialSmoothing

__all__ = ["ThetaForecaster"]


class ThetaForecaster(BaseForecaster):
    """Theta(0, 2) method: SES forecast plus half the linear trend slope."""

    supports_incremental_update = True

    def __init__(self, horizon: int = 1, alpha: float | None = None):
        self.horizon = horizon
        self.alpha = alpha

    def fit(self, X, y=None) -> "ThetaForecaster":
        X = as_2d_array(X)
        self.n_series_ = X.shape[1]
        self._ses = SimpleExponentialSmoothing(alpha=self.alpha, horizon=self.horizon).fit(X)

        # Linear trend slope per series (theta line with theta = 2 doubles the
        # curvature; its mean contribution reduces to half the OLS slope).
        time_index = np.arange(len(X), dtype=float)
        centered_time = time_index - time_index.mean()
        denominator = float(np.dot(centered_time, centered_time))
        slopes = []
        for j in range(X.shape[1]):
            series = X[:, j]
            if denominator == 0:
                slopes.append(0.0)
            else:
                slopes.append(float(np.dot(centered_time, series - series.mean()) / denominator))
        self.slopes_ = np.array(slopes)
        # Sufficient statistics of the OLS slope: with t = 0..n-1 the
        # centered-time denominator and cross term are closed forms of
        # (n, sum y, sum t*y), so update() extends the trend in O(Δ).
        self.n_obs_ = len(X)
        self._y_sum_ = X.sum(axis=0)
        self._ty_sum_ = time_index @ X
        return self

    def update(self, X_new, X_full=None) -> "ThetaForecaster":
        """O(Δ) update of the SES level and the trend's sufficient stats.

        The recomputed slope is the same OLS estimate a cold refit would
        produce, but from accumulated (n, Σy, Σty) rather than one
        vectorized pass over the full series — algebraically identical,
        associatively different, so parity is tight-tolerance rather than
        byte-exact (the SES level side is byte-exact for fixed alpha; see
        :meth:`SimpleExponentialSmoothing.update`).
        """
        check_is_fitted(self, ("slopes_",))
        X_new = as_2d_array(X_new, name="X_new")
        self._ses.update(X_new)
        t_new = np.arange(self.n_obs_, self.n_obs_ + len(X_new), dtype=float)
        self._y_sum_ = self._y_sum_ + X_new.sum(axis=0)
        self._ty_sum_ = self._ty_sum_ + t_new @ X_new
        self.n_obs_ += len(X_new)
        n = float(self.n_obs_)
        t_sum = n * (n - 1.0) / 2.0
        t2_sum = (n - 1.0) * n * (2.0 * n - 1.0) / 6.0
        denominator = t2_sum - t_sum * t_sum / n
        if denominator == 0:
            self.slopes_ = np.zeros(self.n_series_)
        else:
            self.slopes_ = (self._ty_sum_ - t_sum * self._y_sum_ / n) / denominator
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("slopes_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        ses_forecast = self._ses.predict(horizon)
        steps = np.arange(1, horizon + 1, dtype=float).reshape(-1, 1)
        return ses_forecast + 0.5 * self.slopes_ * steps

    @property
    def name(self) -> str:
        return "Theta"
