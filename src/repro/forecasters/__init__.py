"""Statistical forecasting models.

The classical statistical family of the paper's pipeline inventory: naive
baselines (including the Zero Model), exponential smoothing, Holt-Winters
additive/multiplicative, ARIMA with automatic order selection, BATS and the
Theta method.  Every forecaster estimates its own coefficients from the
training data ("statistical models in our system automatically estimate
coefficients and optimize parameters based on the input training data").
"""

from .arima import ARIMAForecaster, AutoARIMAForecaster
from .bats import BATSForecaster
from .ets import DoubleExponentialSmoothing, SimpleExponentialSmoothing
from .holtwinters import HoltWintersForecaster
from .naive import (
    DriftForecaster,
    MeanForecaster,
    SeasonalNaiveForecaster,
    ZeroModelForecaster,
)
from .theta import ThetaForecaster

__all__ = [
    "ZeroModelForecaster",
    "SeasonalNaiveForecaster",
    "DriftForecaster",
    "MeanForecaster",
    "SimpleExponentialSmoothing",
    "DoubleExponentialSmoothing",
    "HoltWintersForecaster",
    "ARIMAForecaster",
    "AutoARIMAForecaster",
    "BATSForecaster",
    "ThetaForecaster",
]
