"""BATS: Box-Cox transform, ARMA errors, Trend and Seasonal components.

De Livera, Hyndman & Snyder (2011), cited by the paper as one of the
statistical pipeline families.  The reproduction follows the BATS recipe as
a composition of the substrates already in this library:

1. optional Box-Cox transform of the data (lambda chosen by profile
   likelihood, skipped for non-positive data);
2. Holt-Winters style level/trend/seasonal smoothing of the transformed
   series (seasonal period discovered from the data when not supplied);
3. an ARMA model fitted to the smoothing residuals to capture remaining
   autocorrelation;
4. forecasts are the sum of the structural forecast and the ARMA error
   forecast, transformed back through the inverse Box-Cox.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon
from ..core.base import BaseForecaster, check_is_fitted
from ..stats.boxcox import boxcox_lambda, boxcox_transform, inverse_boxcox_transform
from ..stats.stattests import is_constant
from .arima import ARIMAForecaster
from .holtwinters import HoltWintersForecaster

__all__ = ["BATSForecaster"]


class BATSForecaster(BaseForecaster):
    """BATS forecaster (Box-Cox, ARMA errors, Trend, Seasonality)."""

    def __init__(
        self,
        use_box_cox: bool | None = None,
        seasonal_period: int | None = None,
        arma_order: tuple[int, int] = (1, 1),
        horizon: int = 1,
    ):
        self.use_box_cox = use_box_cox
        self.seasonal_period = seasonal_period
        self.arma_order = arma_order
        self.horizon = horizon

    def _fit_single(self, series: np.ndarray) -> dict:
        model: dict = {}

        # -- Box-Cox stage ---------------------------------------------------
        apply_box_cox = self.use_box_cox
        if apply_box_cox is None:
            apply_box_cox = bool(np.nanmin(series) > 0)
        if apply_box_cox and np.nanmin(series) > 0:
            lam = boxcox_lambda(series)
            transformed = boxcox_transform(series, lam)
            model["box_cox"] = lam
        else:
            transformed = series.astype(float)
            model["box_cox"] = None

        # -- structural (trend + seasonal) stage ------------------------------
        structural = HoltWintersForecaster(
            seasonal="additive",
            seasonal_period=self.seasonal_period,
            horizon=self.horizon,
        )
        structural.fit(transformed.reshape(-1, 1))
        model["structural"] = structural

        # In-sample one-step-ahead residuals of the structural model are
        # approximated by refitting on a prefix and forecasting the rest in
        # blocks; for efficiency we use the smoother's own seasonally adjusted
        # innovations: residual = value - (level + trend + season) sequence
        # recomputed by a single pass.
        fitted_forecast = structural.predict(len(transformed))
        # ``fitted_forecast`` extrapolates from the end of training, so it is
        # not an in-sample fit; instead compute residuals against a one-season
        # lagged reconstruction which captures what the ARMA stage needs
        # (remaining autocorrelation at short lags).
        period = structural.models_[0]["period"]
        if len(transformed) > period and not is_constant(transformed):
            residuals = transformed[period:] - transformed[:-period]
            residuals = residuals - np.mean(residuals)
        else:
            residuals = np.zeros(max(len(transformed) - 1, 1))

        # -- ARMA error stage --------------------------------------------------
        p, q = (int(order) for order in self.arma_order)
        if len(residuals) > (p + q + 4) and not is_constant(residuals):
            arma = ARIMAForecaster(p=p, d=0, q=q, horizon=self.horizon)
            arma.fit(residuals.reshape(-1, 1))
            model["arma"] = arma
        else:
            model["arma"] = None
        return model

    def fit(self, X, y=None) -> "BATSForecaster":
        X = as_2d_array(X)
        self.models_ = [self._fit_single(X[:, j]) for j in range(X.shape[1])]
        self.n_series_ = X.shape[1]
        return self

    def _predict_single(self, model: dict, horizon: int) -> np.ndarray:
        structural_forecast = model["structural"].predict(horizon).ravel()
        if model["arma"] is not None:
            error_forecast = model["arma"].predict(horizon).ravel()
            # The ARMA stage models seasonal-difference residuals; damp its
            # contribution so it corrects rather than dominates.
            structural_forecast = structural_forecast + 0.5 * error_forecast
        if model["box_cox"] is not None:
            return inverse_boxcox_transform(structural_forecast, model["box_cox"])
        return structural_forecast

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("models_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        columns = [self._predict_single(model, horizon) for model in self.models_]
        return np.column_stack(columns)

    @property
    def name(self) -> str:
        return "bats"
