"""ARIMA forecasting with automatic order selection.

``ARIMAForecaster`` fits a fixed (p, d, q) order using the Hannan-Rissanen
two-stage procedure (a long autoregression provides innovation estimates,
then AR and MA coefficients are estimated jointly by least squares), which
is fast, robust and needs no iterative likelihood optimisation.
``AutoARIMAForecaster`` wraps it with the Box-Jenkins style automatic order
search used by the "Arima" pipeline of the paper: ``d`` from repeated
stationarity tests, ``p``/``q`` by AIC over a small grid.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon
from ..core.base import BaseForecaster, check_is_fitted
from ..exceptions import InvalidParameterError
from ..stats.acf import yule_walker
from ..stats.stattests import is_constant, ndiffs

__all__ = ["ARIMAForecaster", "AutoARIMAForecaster"]


def _difference(series: np.ndarray, d: int) -> tuple[np.ndarray, list[np.ndarray]]:
    """Difference ``d`` times, remembering the values needed to integrate back."""
    history = []
    current = series
    for _ in range(d):
        history.append(current.copy())
        current = np.diff(current)
    return current, history


def _integrate(forecasts: np.ndarray, history: list[np.ndarray]) -> np.ndarray:
    """Undo :func:`_difference` for a block of future forecasts."""
    current = forecasts
    for level in reversed(history):
        current = np.cumsum(current) + level[-1]
    return current


def _enforce_stability(coefficients: np.ndarray, max_modulus: float = 0.97) -> np.ndarray:
    """Shrink AR/MA coefficients until the characteristic roots are stable.

    The Hannan-Rissanen least-squares stage can produce non-stationary AR or
    non-invertible MA polynomials, whose recursions explode when used for
    filtering or forecasting.  Scaling coefficient ``j`` by ``r**j`` scales
    every root's modulus by ``r``, so one rescale is enough.
    """
    coefficients = np.asarray(coefficients, dtype=float)
    if len(coefficients) == 0 or not np.all(np.isfinite(coefficients)):
        return np.zeros_like(coefficients)
    companion = np.zeros((len(coefficients), len(coefficients)))
    companion[0, :] = coefficients
    if len(coefficients) > 1:
        companion[1:, :-1] = np.eye(len(coefficients) - 1)
    moduli = np.abs(np.linalg.eigvals(companion))
    largest = float(moduli.max()) if len(moduli) else 0.0
    if largest <= max_modulus or largest == 0.0:
        return coefficients
    ratio = max_modulus / largest
    powers = ratio ** np.arange(1, len(coefficients) + 1)
    return coefficients * powers


def _hannan_rissanen(series: np.ndarray, p: int, q: int) -> tuple[np.ndarray, np.ndarray, float, np.ndarray]:
    """Estimate ARMA(p, q) coefficients on a (stationary) series.

    Returns ``(ar_coefficients, ma_coefficients, intercept, residuals)``.
    """
    n = len(series)
    mean = float(np.mean(series))
    centered = series - mean

    if q == 0:
        # Pure AR: Yule-Walker is stable and cheap.
        if p == 0:
            residuals = centered.copy()
            return np.zeros(0), np.zeros(0), mean, residuals
        ar, _ = yule_walker(centered, p)
        ar = _enforce_stability(ar)
        residuals = np.zeros(n)
        for t in range(p, n):
            prediction = np.dot(ar, centered[t - p : t][::-1])
            residuals[t] = centered[t] - prediction
        return ar, np.zeros(0), mean, residuals

    # Stage 1: long AR to approximate the innovations.
    long_order = min(max(p + q + 2, int(np.ceil(np.log(max(n, 2)) * 2))), max(n // 4, 1))
    long_ar, _ = yule_walker(centered, long_order)
    innovations = np.zeros(n)
    for t in range(long_order, n):
        prediction = np.dot(long_ar, centered[t - long_order : t][::-1])
        innovations[t] = centered[t] - prediction

    # Stage 2: regress the series on its own lags and lagged innovations.
    start = max(p, q, long_order)
    rows = n - start
    if rows < p + q + 2:
        # Not enough data for the requested order: fall back to pure AR.
        return _hannan_rissanen(series, min(p, 1), 0)

    design = np.empty((rows, p + q))
    target = centered[start:]
    for lag in range(1, p + 1):
        design[:, lag - 1] = centered[start - lag : n - lag]
    for lag in range(1, q + 1):
        design[:, p + lag - 1] = innovations[start - lag : n - lag]

    coefficients, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
    ar = _enforce_stability(coefficients[:p])
    ma = _enforce_stability(coefficients[p:])

    # Recompute residuals with the final coefficients.
    residuals = np.zeros(n)
    for t in range(start, n):
        ar_part = np.dot(ar, centered[t - p : t][::-1]) if p else 0.0
        ma_part = np.dot(ma, residuals[t - q : t][::-1]) if q else 0.0
        residuals[t] = centered[t] - ar_part - ma_part
    return ar, ma, mean, residuals


class ARIMAForecaster(BaseForecaster):
    """ARIMA(p, d, q) with Hannan-Rissanen estimation.

    Multivariate input is handled column-by-column (one independent ARIMA per
    series), matching how the paper's statistical pipelines treat
    multivariate data sets.
    """

    def __init__(self, p: int = 1, d: int = 0, q: int = 0, horizon: int = 1):
        self.p = p
        self.d = d
        self.q = q
        self.horizon = horizon

    def _fit_single(self, series: np.ndarray) -> dict:
        p, d, q = int(self.p), int(self.d), int(self.q)
        if min(p, d, q) < 0:
            raise InvalidParameterError("ARIMA orders must be non-negative.")
        if len(series) <= d + max(p, q) + 1:
            # Series too short for the requested order: degrade to a naive model.
            return {"naive": True, "last_value": float(series[-1])}

        differenced, history = _difference(series, d)
        if is_constant(differenced):
            return {
                "naive": True,
                "last_value": float(series[-1]),
            }
        ar, ma, mean, residuals = _hannan_rissanen(differenced, p, q)
        sigma2 = float(np.var(residuals[max(p, q) :])) if len(residuals) else 0.0
        n_params = p + q + 1
        n_obs = max(len(differenced) - max(p, q), 1)
        aic = n_obs * np.log(max(sigma2, 1e-12)) + 2 * n_params
        return {
            "naive": False,
            "ar": ar,
            "ma": ma,
            "mean": mean,
            "residuals": residuals,
            "differenced": differenced,
            "history": history,
            "aic": float(aic),
            "sigma2": sigma2,
        }

    def fit(self, X, y=None) -> "ARIMAForecaster":
        X = as_2d_array(X)
        self.models_ = [self._fit_single(X[:, j]) for j in range(X.shape[1])]
        self.n_series_ = X.shape[1]
        self.aic_ = float(
            np.mean([model.get("aic", 0.0) for model in self.models_ if not model["naive"]])
            if any(not model["naive"] for model in self.models_)
            else np.inf
        )
        return self

    def _forecast_single(self, model: dict, horizon: int) -> np.ndarray:
        if model["naive"]:
            return np.full(horizon, model["last_value"])
        p, q = len(model["ar"]), len(model["ma"])
        centered = model["differenced"] - model["mean"]
        values = list(centered)
        residuals = list(model["residuals"])
        forecasts = []
        for _ in range(horizon):
            ar_part = (
                np.dot(model["ar"], np.array(values[-p:])[::-1]) if p and len(values) >= p else 0.0
            )
            ma_part = (
                np.dot(model["ma"], np.array(residuals[-q:])[::-1])
                if q and len(residuals) >= q
                else 0.0
            )
            prediction = ar_part + ma_part
            forecasts.append(prediction)
            values.append(prediction)
            residuals.append(0.0)
        forecasts = np.array(forecasts) + model["mean"]
        return _integrate(forecasts, model["history"])

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("models_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        columns = [self._forecast_single(model, horizon) for model in self.models_]
        return np.column_stack(columns)

    @property
    def name(self) -> str:
        return "Arima"


class AutoARIMAForecaster(BaseForecaster):
    """Box-Jenkins style automatic ARIMA order selection.

    ``d`` is chosen by repeated stationarity testing (KPSS/ADF-style
    heuristic in :func:`repro.stats.stattests.ndiffs`), then a small grid of
    (p, q) orders is scored by AIC and the best model per series is kept.
    """

    def __init__(
        self,
        max_p: int = 3,
        max_q: int = 3,
        max_d: int = 2,
        horizon: int = 1,
    ):
        self.max_p = max_p
        self.max_q = max_q
        self.max_d = max_d
        self.horizon = horizon

    def _select_single(self, series: np.ndarray) -> ARIMAForecaster:
        d = ndiffs(series, max_d=int(self.max_d))
        best_model: ARIMAForecaster | None = None
        best_aic = np.inf
        for p in range(int(self.max_p) + 1):
            for q in range(int(self.max_q) + 1):
                if p == 0 and q == 0:
                    continue
                candidate = ARIMAForecaster(p=p, d=d, q=q, horizon=self.horizon)
                try:
                    candidate.fit(series.reshape(-1, 1))
                except Exception:
                    continue
                if candidate.aic_ < best_aic:
                    best_aic = candidate.aic_
                    best_model = candidate
        if best_model is None:
            best_model = ARIMAForecaster(p=1, d=d, q=0, horizon=self.horizon)
            best_model.fit(series.reshape(-1, 1))
        return best_model

    def fit(self, X, y=None) -> "AutoARIMAForecaster":
        X = as_2d_array(X)
        self.selected_models_ = [self._select_single(X[:, j]) for j in range(X.shape[1])]
        self.orders_ = [
            (model.p, model.d, model.q) for model in self.selected_models_
        ]
        self.n_series_ = X.shape[1]
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("selected_models_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        columns = [model.predict(horizon).ravel() for model in self.selected_models_]
        return np.column_stack(columns)

    @property
    def name(self) -> str:
        return "AutoARIMA"
