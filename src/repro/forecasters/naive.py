"""Naive forecasting baselines, including the paper's Zero Model.

"The Zero Model simply outputs the most recent value of a time series as the
next prediction.  For prediction horizons greater than 1 the most recent
value is repeated." (paper section 4).  The seasonal naive and drift variants
are used by the MASE metric, the ablation benchmarks and the data-suite
sanity tests.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon, check_positive_int
from ..core.base import BaseForecaster, check_is_fitted
from ..exceptions import DataQualityError

__all__ = [
    "ZeroModelForecaster",
    "SeasonalNaiveForecaster",
    "DriftForecaster",
    "MeanForecaster",
]


def _check_update_block(X_new, n_series: int) -> "np.ndarray":
    """Validate an update block: 2-D, temporal order, same series count."""
    X_new = as_2d_array(X_new, name="X_new")
    if X_new.shape[1] != n_series:
        raise DataQualityError(
            f"update block has {X_new.shape[1]} series, the fitted model has "
            f"{n_series}."
        )
    return X_new


class ZeroModelForecaster(BaseForecaster):
    """Repeat the last observed value of every series over the horizon."""

    supports_incremental_update = True

    def __init__(self, horizon: int = 1):
        self.horizon = horizon

    def fit(self, X, y=None) -> "ZeroModelForecaster":
        X = as_2d_array(X)
        self.last_values_ = X[-1].copy()
        self.n_series_ = X.shape[1]
        return self

    def update(self, X_new, X_full=None) -> "ZeroModelForecaster":
        """O(1) update: only the newest row matters (byte-identical to refit)."""
        check_is_fitted(self, ("last_values_",))
        X_new = _check_update_block(X_new, self.n_series_)
        self.last_values_ = X_new[-1].copy()
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("last_values_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        return np.tile(self.last_values_, (horizon, 1))


class SeasonalNaiveForecaster(BaseForecaster):
    """Repeat the last full season of every series.

    Falls back to the Zero Model behaviour when the series is shorter than
    one season.
    """

    def __init__(self, seasonal_period: int = 1, horizon: int = 1):
        self.seasonal_period = seasonal_period
        self.horizon = horizon

    supports_incremental_update = True

    def fit(self, X, y=None) -> "SeasonalNaiveForecaster":
        period = check_positive_int(self.seasonal_period, "seasonal_period")
        X = as_2d_array(X)
        if len(X) >= period:
            self.last_season_ = X[-period:].copy()
        else:
            self.last_season_ = np.tile(X[-1], (period, 1))
        self.n_series_ = X.shape[1]
        self.n_obs_ = len(X)
        # Observed (not tiled) trailing rows, up to one season: the state
        # update() needs to reproduce a cold refit exactly.
        self._tail_ = X[-period:].copy()
        return self

    def update(self, X_new, X_full=None) -> "SeasonalNaiveForecaster":
        """O(period) update: roll the observed tail (byte-identical to refit)."""
        check_is_fitted(self, ("last_season_",))
        X_new = _check_update_block(X_new, self.n_series_)
        period = check_positive_int(self.seasonal_period, "seasonal_period")
        tail = np.vstack([self._tail_, X_new])[-period:]
        self.n_obs_ += len(X_new)
        self._tail_ = tail
        if self.n_obs_ >= period:
            self.last_season_ = tail.copy()
        else:
            self.last_season_ = np.tile(tail[-1], (period, 1))
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("last_season_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        period = len(self.last_season_)
        repeats = int(np.ceil(horizon / period))
        tiled = np.tile(self.last_season_, (repeats, 1))
        return tiled[:horizon]


class DriftForecaster(BaseForecaster):
    """Extrapolate the average first difference (random walk with drift)."""

    supports_incremental_update = True

    def __init__(self, horizon: int = 1):
        self.horizon = horizon

    def fit(self, X, y=None) -> "DriftForecaster":
        X = as_2d_array(X)
        self.last_values_ = X[-1].copy()
        self.first_values_ = X[0].copy()
        self.n_obs_ = len(X)
        if len(X) > 1:
            self.drift_ = (X[-1] - X[0]) / (len(X) - 1)
        else:
            self.drift_ = np.zeros(X.shape[1])
        self.n_series_ = X.shape[1]
        return self

    def update(self, X_new, X_full=None) -> "DriftForecaster":
        """O(1) update from (first value, count): byte-identical to a refit —
        the drift is the same ``(last - first) / (n - 1)`` expression on the
        same operand bytes."""
        check_is_fitted(self, ("last_values_",))
        X_new = _check_update_block(X_new, self.n_series_)
        self.n_obs_ += len(X_new)
        self.last_values_ = X_new[-1].copy()
        if self.n_obs_ > 1:
            self.drift_ = (self.last_values_ - self.first_values_) / (self.n_obs_ - 1)
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("last_values_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        steps = np.arange(1, horizon + 1).reshape(-1, 1)
        return self.last_values_ + steps * self.drift_


class MeanForecaster(BaseForecaster):
    """Forecast the historical mean of every series.

    Exists mainly as the simplest *sufficient-statistics* forecaster: the
    fitted state is a per-series running sum and a count, so ``update`` is
    O(len(X_new)) and exact up to float summation order (a cold refit sums
    all rows in one vectorized pass, the incremental path adds block sums —
    algebraically identical, associatively different).
    """

    supports_incremental_update = True

    def __init__(self, horizon: int = 1):
        self.horizon = horizon

    def fit(self, X, y=None) -> "MeanForecaster":
        X = as_2d_array(X)
        self.sum_ = X.sum(axis=0)
        self.n_obs_ = len(X)
        self.mean_ = self.sum_ / self.n_obs_
        self.n_series_ = X.shape[1]
        return self

    def update(self, X_new, X_full=None) -> "MeanForecaster":
        check_is_fitted(self, ("mean_",))
        X_new = _check_update_block(X_new, self.n_series_)
        self.sum_ = self.sum_ + X_new.sum(axis=0)
        self.n_obs_ += len(X_new)
        self.mean_ = self.sum_ / self.n_obs_
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("mean_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        return np.tile(self.mean_, (horizon, 1))

    @property
    def name(self) -> str:
        return "Mean"
