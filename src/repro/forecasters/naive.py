"""Naive forecasting baselines, including the paper's Zero Model.

"The Zero Model simply outputs the most recent value of a time series as the
next prediction.  For prediction horizons greater than 1 the most recent
value is repeated." (paper section 4).  The seasonal naive and drift variants
are used by the MASE metric, the ablation benchmarks and the data-suite
sanity tests.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_2d_array, check_horizon, check_positive_int
from ..core.base import BaseForecaster, check_is_fitted

__all__ = ["ZeroModelForecaster", "SeasonalNaiveForecaster", "DriftForecaster"]


class ZeroModelForecaster(BaseForecaster):
    """Repeat the last observed value of every series over the horizon."""

    def __init__(self, horizon: int = 1):
        self.horizon = horizon

    def fit(self, X, y=None) -> "ZeroModelForecaster":
        X = as_2d_array(X)
        self.last_values_ = X[-1].copy()
        self.n_series_ = X.shape[1]
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("last_values_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        return np.tile(self.last_values_, (horizon, 1))


class SeasonalNaiveForecaster(BaseForecaster):
    """Repeat the last full season of every series.

    Falls back to the Zero Model behaviour when the series is shorter than
    one season.
    """

    def __init__(self, seasonal_period: int = 1, horizon: int = 1):
        self.seasonal_period = seasonal_period
        self.horizon = horizon

    def fit(self, X, y=None) -> "SeasonalNaiveForecaster":
        period = check_positive_int(self.seasonal_period, "seasonal_period")
        X = as_2d_array(X)
        if len(X) >= period:
            self.last_season_ = X[-period:].copy()
        else:
            self.last_season_ = np.tile(X[-1], (period, 1))
        self.n_series_ = X.shape[1]
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("last_season_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        period = len(self.last_season_)
        repeats = int(np.ceil(horizon / period))
        tiled = np.tile(self.last_season_, (repeats, 1))
        return tiled[:horizon]


class DriftForecaster(BaseForecaster):
    """Extrapolate the average first difference (random walk with drift)."""

    def __init__(self, horizon: int = 1):
        self.horizon = horizon

    def fit(self, X, y=None) -> "DriftForecaster":
        X = as_2d_array(X)
        self.last_values_ = X[-1].copy()
        if len(X) > 1:
            self.drift_ = (X[-1] - X[0]) / (len(X) - 1)
        else:
            self.drift_ = np.zeros(X.shape[1])
        self.n_series_ = X.shape[1]
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("last_values_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        steps = np.arange(1, horizon + 1).reshape(-1, 1)
        return self.last_values_ + steps * self.drift_
