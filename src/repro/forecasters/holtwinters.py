"""Holt-Winters triple exponential smoothing (additive and multiplicative).

Two of the ten AutoAI-TS pipelines are ``HW_Additive`` and
``HW_Multiplicative`` (figure 14/15).  The seasonal period is discovered
automatically from the data when not supplied, and the three smoothing
parameters are optimised by minimising the in-sample one-step-ahead squared
error.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from .._validation import as_2d_array, check_horizon
from ..core.base import BaseForecaster, check_is_fitted
from ..exceptions import InvalidParameterError
from ..stats.spectral import dominant_period

__all__ = ["HoltWintersForecaster"]

_SEASONAL_MODES = ("additive", "multiplicative")


def _initial_state(series: np.ndarray, period: int, seasonal: str):
    """Classical decomposition-style initial level, trend and seasonal terms.

    Deliberately *prefix-stable*: only the first two seasons of data feed
    the initial state, so appending observations to a series that already
    covered two seasons leaves the initialization — and therefore any
    continued recursion — identical to a cold refit's.  That property is
    what makes :meth:`HoltWintersForecaster.update` exact.
    """
    n_seasons = len(series) // period
    if n_seasons >= 2:
        first_season = series[:period]
        second_season = series[period : 2 * period]
        level = float(np.mean(first_season))
        trend = float((np.mean(second_season) - np.mean(first_season)) / period)
    else:
        level = float(series[0])
        trend = float((series[-1] - series[0]) / max(len(series) - 1, 1))

    seasonals = np.zeros(period)
    usable_seasons = max(min(n_seasons, 2), 1)
    for offset in range(period):
        values = series[offset::period][:usable_seasons]
        season_mean = float(np.mean(values)) if len(values) else level
        if seasonal == "additive":
            seasonals[offset] = season_mean - level
        else:
            seasonals[offset] = season_mean / level if level != 0 else 1.0
    return level, trend, seasonals


def _run_filter(
    series: np.ndarray,
    period: int,
    seasonal: str,
    alpha: float,
    beta: float,
    gamma: float,
):
    """Run the smoothing recursions; return (sse, level, trend, seasonals)."""
    level, trend, seasonals = _initial_state(series, period, seasonal)
    return _advance_filter(series, period, seasonal, alpha, beta, gamma, level, trend, seasonals)


def _advance_filter(
    series: np.ndarray,
    period: int,
    seasonal: str,
    alpha: float,
    beta: float,
    gamma: float,
    level: float,
    trend: float,
    seasonals: np.ndarray,
    t0: int = 0,
):
    """Advance the recursion over ``series`` from state at time ``t0``."""
    seasonals = seasonals.copy()
    sse = 0.0
    for t, value in enumerate(series, start=t0):
        season_index = t % period
        if seasonal == "additive":
            forecast = level + trend + seasonals[season_index]
        else:
            forecast = (level + trend) * seasonals[season_index]
        sse += (value - forecast) ** 2

        previous_level = level
        if seasonal == "additive":
            level = alpha * (value - seasonals[season_index]) + (1 - alpha) * (level + trend)
            seasonals[season_index] = gamma * (value - level) + (1 - gamma) * seasonals[
                season_index
            ]
        else:
            divisor = seasonals[season_index] if seasonals[season_index] != 0 else 1e-10
            level = alpha * (value / divisor) + (1 - alpha) * (level + trend)
            level_divisor = level if level != 0 else 1e-10
            seasonals[season_index] = gamma * (value / level_divisor) + (1 - gamma) * seasonals[
                season_index
            ]
        trend = beta * (level - previous_level) + (1 - beta) * trend
    return sse, level, trend, seasonals


class HoltWintersForecaster(BaseForecaster):
    """Triple exponential smoothing with additive or multiplicative seasonality.

    Supports :meth:`update`: the state recursion continues over new rows
    with frozen configuration (see the method's docstring for exactness
    conditions).

    Parameters
    ----------
    seasonal:
        ``"additive"`` or ``"multiplicative"``.  Multiplicative seasonality
        requires strictly positive data; the model falls back to additive
        seasonality when the input violates that (and records the fallback in
        ``effective_seasonal_``).
    seasonal_period:
        Number of observations per season; discovered from the data via
        spectral analysis when ``None``.
    """

    supports_incremental_update = True

    def __init__(
        self,
        seasonal: str = "additive",
        seasonal_period: int | None = None,
        alpha: float | None = None,
        beta: float | None = None,
        gamma: float | None = None,
        horizon: int = 1,
    ):
        self.seasonal = seasonal
        self.seasonal_period = seasonal_period
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.horizon = horizon

    def _resolve_period(self, series: np.ndarray) -> int:
        if self.seasonal_period is not None:
            period = int(self.seasonal_period)
            if period < 2:
                raise InvalidParameterError("seasonal_period must be >= 2.")
        else:
            period = dominant_period(series, max_period=len(series) // 2) or 0
        if period < 2 or period * 2 > len(series):
            # No usable seasonality: fall back to a short pseudo-season which
            # reduces the model to (almost) Holt's linear trend.
            period = 2 if len(series) >= 4 else 1
        return max(period, 1)

    def _fit_single(self, series: np.ndarray):
        seasonal = self.seasonal
        if seasonal == "multiplicative" and np.nanmin(series) <= 0:
            seasonal = "additive"
        period = self._resolve_period(series)

        fixed = (self.alpha, self.beta, self.gamma)
        if all(value is not None for value in fixed):
            alpha, beta, gamma = (float(np.clip(v, 1e-4, 1.0)) for v in fixed)
        elif len(series) < 2 * period or np.ptp(series) == 0:
            alpha, beta, gamma = 0.5, 0.05, 0.1
        else:
            def objective(params: np.ndarray) -> float:
                sse, _, _, _ = _run_filter(
                    series, period, seasonal, params[0], params[1], params[2]
                )
                return sse

            result = optimize.minimize(
                objective,
                np.array([0.3, 0.05, 0.1]),
                bounds=[(1e-4, 1.0)] * 3,
                method="L-BFGS-B",
            )
            alpha, beta, gamma = (float(v) for v in result.x)

        _, level, trend, seasonals = _run_filter(series, period, seasonal, alpha, beta, gamma)
        return {
            "seasonal": seasonal,
            "period": period,
            "alpha": alpha,
            "beta": beta,
            "gamma": gamma,
            "level": level,
            "trend": trend,
            "seasonals": seasonals,
            "n_obs": len(series),
        }

    def update(self, X_new, X_full=None) -> "HoltWintersForecaster":
        """Continue each column's smoothing recursion over the new rows.

        The model's configuration (seasonal mode, period, smoothing
        parameters) is frozen at its fitted values; only the level, trend
        and seasonal state advance.  Because :func:`_initial_state` is
        prefix-stable, this is byte-identical to a cold refit when the
        parameters are fixed, the original fit saw at least two full
        seasons, and the period/seasonal-mode resolution would not change
        on the longer series — the conditions the parity test pins.
        """
        check_is_fitted(self, ("models_",))
        X_new = as_2d_array(X_new, name="X_new")
        if X_new.shape[1] != self.n_series_:
            raise InvalidParameterError(
                f"update block has {X_new.shape[1]} series, the fitted model "
                f"has {self.n_series_}."
            )
        for j, model in enumerate(self.models_):
            _, level, trend, seasonals = _advance_filter(
                X_new[:, j],
                model["period"],
                model["seasonal"],
                model["alpha"],
                model["beta"],
                model["gamma"],
                model["level"],
                model["trend"],
                model["seasonals"],
                t0=model["n_obs"],
            )
            model["level"] = level
            model["trend"] = trend
            model["seasonals"] = seasonals
            model["n_obs"] += len(X_new)
        return self

    def fit(self, X, y=None) -> "HoltWintersForecaster":
        if self.seasonal not in _SEASONAL_MODES:
            raise InvalidParameterError(
                f"seasonal must be one of {_SEASONAL_MODES}, got {self.seasonal!r}."
            )
        X = as_2d_array(X)
        self.models_ = [self._fit_single(X[:, j]) for j in range(X.shape[1])]
        self.effective_seasonal_ = [model["seasonal"] for model in self.models_]
        self.n_series_ = X.shape[1]
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("models_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        forecasts = np.empty((horizon, self.n_series_))
        for j, model in enumerate(self.models_):
            period = model["period"]
            seasonals = model["seasonals"]
            start = model["n_obs"]
            for step in range(1, horizon + 1):
                season_index = (start + step - 1) % period
                base = model["level"] + step * model["trend"]
                if model["seasonal"] == "additive":
                    forecasts[step - 1, j] = base + seasonals[season_index]
                else:
                    forecasts[step - 1, j] = base * seasonals[season_index]
        return forecasts

    @property
    def name(self) -> str:
        suffix = "Multiplicative" if self.seasonal == "multiplicative" else "Additive"
        return f"HW_{suffix}"
