"""Simple and double (Holt) exponential smoothing.

Building blocks for the Holt-Winters and BATS forecasters and usable as
stand-alone pipeline candidates.  Smoothing parameters are optimised by
minimising the in-sample one-step-ahead squared error with scipy's bounded
optimiser, mirroring the state-space methodology referenced in the paper
(Hyndman et al., "Forecasting with exponential smoothing").
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from .._validation import as_2d_array, check_horizon
from ..core.base import BaseForecaster, check_is_fitted
from ..exceptions import DataQualityError


def _check_update_block(X_new, n_series: int) -> np.ndarray:
    X_new = as_2d_array(X_new, name="X_new")
    if X_new.shape[1] != n_series:
        raise DataQualityError(
            f"update block has {X_new.shape[1]} series, the fitted model has "
            f"{n_series}."
        )
    return X_new

__all__ = ["SimpleExponentialSmoothing", "DoubleExponentialSmoothing"]


def _ses_sse(alpha: float, series: np.ndarray) -> float:
    level = series[0]
    sse = 0.0
    for value in series[1:]:
        sse += (value - level) ** 2
        level = alpha * value + (1 - alpha) * level
    return sse


def _holt_sse(params: np.ndarray, series: np.ndarray, damped: bool) -> float:
    alpha, beta = params[0], params[1]
    phi = params[2] if damped else 1.0
    level = series[0]
    trend = series[1] - series[0] if len(series) > 1 else 0.0
    sse = 0.0
    for value in series[1:]:
        forecast = level + phi * trend
        sse += (value - forecast) ** 2
        new_level = alpha * value + (1 - alpha) * forecast
        trend = beta * (new_level - level) + (1 - beta) * phi * trend
        level = new_level
    return sse


class SimpleExponentialSmoothing(BaseForecaster):
    """Exponentially weighted level model (flat forecast function)."""

    supports_incremental_update = True

    def __init__(self, alpha: float | None = None, horizon: int = 1):
        self.alpha = alpha
        self.horizon = horizon

    def _fit_single(self, series: np.ndarray) -> tuple[float, float]:
        if self.alpha is not None:
            alpha = float(np.clip(self.alpha, 1e-4, 1.0))
        elif len(series) < 3 or np.ptp(series) == 0:
            alpha = 0.5
        else:
            result = optimize.minimize_scalar(
                _ses_sse, bounds=(1e-4, 1.0), args=(series,), method="bounded"
            )
            alpha = float(result.x)
        level = series[0]
        for value in series[1:]:
            level = alpha * value + (1 - alpha) * level
        return alpha, float(level)

    def fit(self, X, y=None) -> "SimpleExponentialSmoothing":
        X = as_2d_array(X)
        fitted = [self._fit_single(X[:, j]) for j in range(X.shape[1])]
        self.alphas_ = np.array([item[0] for item in fitted])
        self.levels_ = np.array([item[1] for item in fitted])
        self.n_series_ = X.shape[1]
        return self

    def update(self, X_new, X_full=None) -> "SimpleExponentialSmoothing":
        """Continue the level recursion over the new rows, smoothing
        parameters frozen at their fitted values.

        With a fixed ``alpha`` this is byte-identical to a cold refit on
        the concatenated series: the recursion is the same elementwise
        IEEE expression over the same operands.  With auto-optimised
        alpha a cold refit would re-optimise on the longer series; the
        update deliberately keeps the fitted parameters (that is the O(Δ)
        point) so forecasts agree only approximately there.
        """
        check_is_fitted(self, ("levels_",))
        X_new = _check_update_block(X_new, self.n_series_)
        levels = self.levels_
        for row in X_new:
            levels = self.alphas_ * row + (1 - self.alphas_) * levels
        self.levels_ = levels
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("levels_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        return np.tile(self.levels_, (horizon, 1))


class DoubleExponentialSmoothing(BaseForecaster):
    """Holt's linear (optionally damped) trend method."""

    supports_incremental_update = True

    def __init__(
        self,
        alpha: float | None = None,
        beta: float | None = None,
        damped: bool = False,
        horizon: int = 1,
    ):
        self.alpha = alpha
        self.beta = beta
        self.damped = damped
        self.horizon = horizon

    def _fit_single(self, series: np.ndarray) -> tuple[float, float, float, float, float]:
        if len(series) < 4 or np.ptp(series) == 0:
            alpha, beta, phi = 0.5, 0.1, 0.98 if self.damped else 1.0
        elif self.alpha is not None and self.beta is not None:
            alpha = float(np.clip(self.alpha, 1e-4, 1.0))
            beta = float(np.clip(self.beta, 1e-4, 1.0))
            phi = 0.98 if self.damped else 1.0
        else:
            if self.damped:
                initial = np.array([0.5, 0.1, 0.95])
                bounds = [(1e-4, 1.0), (1e-4, 1.0), (0.8, 1.0)]
            else:
                initial = np.array([0.5, 0.1])
                bounds = [(1e-4, 1.0), (1e-4, 1.0)]
            result = optimize.minimize(
                _holt_sse,
                initial,
                args=(series, self.damped),
                bounds=bounds,
                method="L-BFGS-B",
            )
            alpha, beta = float(result.x[0]), float(result.x[1])
            phi = float(result.x[2]) if self.damped else 1.0

        level = series[0]
        trend = series[1] - series[0] if len(series) > 1 else 0.0
        for value in series[1:]:
            forecast = level + phi * trend
            new_level = alpha * value + (1 - alpha) * forecast
            trend = beta * (new_level - level) + (1 - beta) * phi * trend
            level = new_level
        return alpha, beta, phi, float(level), float(trend)

    def fit(self, X, y=None) -> "DoubleExponentialSmoothing":
        X = as_2d_array(X)
        fitted = [self._fit_single(X[:, j]) for j in range(X.shape[1])]
        self.alphas_ = np.array([item[0] for item in fitted])
        self.betas_ = np.array([item[1] for item in fitted])
        self.phis_ = np.array([item[2] for item in fitted])
        self.levels_ = np.array([item[3] for item in fitted])
        self.trends_ = np.array([item[4] for item in fitted])
        self.n_series_ = X.shape[1]
        return self

    def update(self, X_new, X_full=None) -> "DoubleExponentialSmoothing":
        """Continue Holt's level/trend recursion with frozen parameters.

        Byte-identical to a cold refit when ``alpha``/``beta`` are fixed
        (same elementwise recursion over the same operands); with
        optimised parameters the update keeps the fitted values rather
        than re-optimising — see :meth:`SimpleExponentialSmoothing.update`.
        """
        check_is_fitted(self, ("levels_",))
        X_new = _check_update_block(X_new, self.n_series_)
        levels, trends = self.levels_, self.trends_
        alphas, betas, phis = self.alphas_, self.betas_, self.phis_
        for row in X_new:
            forecast = levels + phis * trends
            new_levels = alphas * row + (1 - alphas) * forecast
            trends = betas * (new_levels - levels) + (1 - betas) * phis * trends
            levels = new_levels
        self.levels_, self.trends_ = levels, trends
        return self

    def predict(self, horizon: int | None = None) -> np.ndarray:
        check_is_fitted(self, ("levels_",))
        horizon = check_horizon(horizon if horizon is not None else self.horizon)
        forecasts = np.empty((horizon, self.n_series_))
        for j in range(self.n_series_):
            phi = self.phis_[j]
            if phi == 1.0:
                damping = np.arange(1, horizon + 1, dtype=float)
            else:
                damping = np.cumsum(phi ** np.arange(1, horizon + 1))
            forecasts[:, j] = self.levels_[j] + damping * self.trends_[j]
        return forecasts
