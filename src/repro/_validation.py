"""Input validation helpers shared across the library.

The public AutoAI-TS API (paper section 3) uses 2-D arrays in which columns
are individual time series and rows are samples.  These helpers normalise
user input into that canonical shape and perform the defensive checks the
paper's "quality check" stage relies on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .exceptions import DataQualityError, InvalidParameterError

__all__ = [
    "as_2d_array",
    "as_1d_array",
    "check_positive_int",
    "check_fraction",
    "check_horizon",
    "check_consistent_length",
    "has_missing",
    "has_negative",
    "num_series",
]


def as_2d_array(values, name: str = "X", dtype=float, allow_nan: bool = True) -> np.ndarray:
    """Coerce ``values`` to a 2-D float array of shape ``(n_samples, n_series)``.

    1-D input is treated as a single time series (one column).  Non-numeric
    input raises :class:`DataQualityError` because it indicates the data did
    not pass the paper's quality check (strings / unexpected characters).

    Columnar frames (``repro.frame``) are accepted by duck type — the
    marker attribute, not an import, so this module stays dependency-free
    — and are **materialized** here: this is the compatibility path for
    consumers that only speak 2-D arrays.  Code that can stream should
    check ``is_timeseries_frame`` itself before falling through to this.
    """
    if getattr(values, "is_timeseries_frame", False):
        values = values.to_array()
    try:
        array = np.asarray(values, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise DataQualityError(
            f"{name} contains non-numeric values and cannot be used for "
            f"forecasting: {exc}"
        ) from exc

    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise DataQualityError(
            f"{name} must be a 1-D or 2-D array, got {array.ndim} dimensions."
        )
    if array.shape[0] == 0:
        raise DataQualityError(f"{name} is empty: at least one sample is required.")
    if not allow_nan and np.isnan(array).any():
        raise DataQualityError(f"{name} contains NaN values.")
    return array


def as_1d_array(values, name: str = "y", dtype=float) -> np.ndarray:
    """Coerce ``values`` to a 1-D float array, squeezing single columns."""
    array = np.asarray(values, dtype=dtype)
    if array.ndim == 2 and array.shape[1] == 1:
        array = array.ravel()
    if array.ndim != 1:
        raise DataQualityError(f"{name} must be a 1-D array, got shape {array.shape}.")
    return array


def check_positive_int(value, name: str, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer >= ``minimum``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}.")
    if value < minimum:
        raise InvalidParameterError(f"{name} must be >= {minimum}, got {value}.")
    return int(value)


def check_fraction(value, name: str) -> float:
    """Validate that ``value`` lies strictly inside ``(0, 1)``."""
    value = float(value)
    if not 0.0 < value < 1.0:
        raise InvalidParameterError(f"{name} must be in (0, 1), got {value}.")
    return value


def check_horizon(horizon) -> int:
    """Validate a prediction horizon (>= 1)."""
    return check_positive_int(horizon, "prediction_horizon", minimum=1)


def check_consistent_length(*arrays: Sequence) -> None:
    """Raise if the arrays do not all share the same first dimension."""
    lengths = {len(a) for a in arrays if a is not None}
    if len(lengths) > 1:
        raise DataQualityError(
            f"Input arrays have inconsistent lengths: {sorted(lengths)}."
        )


def has_missing(array: np.ndarray) -> bool:
    """Return True when the array contains NaN values."""
    return bool(np.isnan(array).any())


def has_negative(array: np.ndarray) -> bool:
    """Return True when the array contains negative values (ignoring NaNs)."""
    return bool(np.nanmin(array) < 0) if array.size else False


def num_series(array: np.ndarray) -> int:
    """Number of time series (columns) in a canonical 2-D array."""
    return 1 if array.ndim == 1 else array.shape[1]
