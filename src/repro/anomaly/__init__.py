"""Anomaly detection on time series (paper section 6 future work).

The conclusion of the paper lists anomaly detection as the first planned
extension of AutoAI-TS.  This package provides two detectors that reuse the
existing forecasting substrates:

* :class:`ForecastResidualDetector` — fit any forecaster (by default the
  zero-conf :class:`~repro.core.autoai_ts.AutoAITS` pipeline winner can be
  plugged in) on a rolling basis and flag observations whose one-step-ahead
  residual is an outlier under a robust (median/MAD) z-score.
* :class:`SeasonalESDDetector` — a seasonal-decomposition + generalised
  extreme studentised deviate detector in the spirit of Twitter's
  AnomalyDetection package, suitable for the NAB-style monitoring traces in
  the benchmark suite.
* :class:`ResidualDriftWatcher` — the online counterpart: a stateful
  observer fed one forecast residual per arrival that reports sustained
  regime change (:class:`DriftReport`), used by :mod:`repro.stream` to
  trigger warm-started re-ranking.
"""

from .detectors import AnomalyResult, ForecastResidualDetector, SeasonalESDDetector
from .watch import DriftReport, ResidualDriftWatcher

__all__ = [
    "AnomalyResult",
    "ForecastResidualDetector",
    "SeasonalESDDetector",
    "DriftReport",
    "ResidualDriftWatcher",
]
