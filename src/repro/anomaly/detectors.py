"""Residual-based and seasonal-ESD anomaly detectors."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats as scipy_stats

from .._validation import as_1d_array, check_fraction, check_positive_int
from ..core.base import BaseEstimator, BaseForecaster, check_is_fitted, clone
from ..exceptions import InvalidParameterError
from ..forecasters.naive import SeasonalNaiveForecaster
from ..stats.spectral import dominant_period

__all__ = ["AnomalyResult", "ForecastResidualDetector", "SeasonalESDDetector"]


@dataclass
class AnomalyResult:
    """Outcome of an anomaly-detection pass over one series.

    Attributes
    ----------
    indices:
        Positions of the observations flagged as anomalous, ascending.
    scores:
        Anomaly score per observation (higher = more anomalous); the same
        length as the input series.
    threshold:
        The score threshold above which observations were flagged.
    """

    indices: np.ndarray
    scores: np.ndarray
    threshold: float
    extras: dict = field(default_factory=dict)

    @property
    def mask(self) -> np.ndarray:
        """Boolean mask over the input series (True = anomalous)."""
        mask = np.zeros(len(self.scores), dtype=bool)
        mask[self.indices] = True
        return mask

    def __len__(self) -> int:
        return len(self.indices)


def _robust_zscores(residuals: np.ndarray) -> np.ndarray:
    """Median/MAD standardised residuals (0.6745 makes MAD sigma-consistent)."""
    median = float(np.median(residuals))
    mad = float(np.median(np.abs(residuals - median)))
    if mad <= 1e-12:
        spread = float(np.std(residuals))
        if spread <= 1e-12:
            return np.zeros_like(residuals)
        return np.abs(residuals - median) / spread
    return 0.6745 * np.abs(residuals - median) / mad


class ForecastResidualDetector(BaseEstimator):
    """Flag points whose one-step-ahead forecast residual is a robust outlier.

    Parameters
    ----------
    forecaster:
        Any library forecaster; a clone is refitted on each training window.
        Defaults to a seasonal-naive model with an auto-detected period,
        which is cheap and surprisingly hard to beat for anomaly screening.
    threshold:
        Robust z-score above which a point is flagged (3.5 is the usual
        Iglewicz-Hoaglin recommendation).
    warmup_fraction:
        Initial fraction of the series used purely for the first fit; points
        inside the warm-up are never flagged.
    refit_every:
        Number of steps between refits of the forecaster as the detector
        walks forward through the series (larger = faster, smaller = more
        adaptive).
    """

    def __init__(
        self,
        forecaster: BaseForecaster | None = None,
        threshold: float = 3.5,
        warmup_fraction: float = 0.3,
        refit_every: int = 25,
    ):
        self.forecaster = forecaster
        self.threshold = threshold
        self.warmup_fraction = warmup_fraction
        self.refit_every = refit_every

    def _default_forecaster(self, series: np.ndarray) -> BaseForecaster:
        period = dominant_period(series, max_period=max(len(series) // 3, 2)) or 1
        return SeasonalNaiveForecaster(seasonal_period=max(period, 1), horizon=1)

    def fit_detect(self, series) -> AnomalyResult:
        """Run the walk-forward detection over the whole series."""
        if self.threshold <= 0:
            raise InvalidParameterError("threshold must be positive.")
        check_fraction(self.warmup_fraction, "warmup_fraction")
        check_positive_int(self.refit_every, "refit_every")

        series = as_1d_array(series, name="series")
        n_samples = len(series)
        warmup = max(int(self.warmup_fraction * n_samples), 8)
        if n_samples <= warmup + 2:
            raise InvalidParameterError(
                f"Series of length {n_samples} is too short for warmup={warmup}."
            )

        template = self.forecaster if self.forecaster is not None else self._default_forecaster(
            series
        )

        residuals = np.zeros(n_samples)
        model = None
        last_fit_at = 0
        for t in range(warmup, n_samples):
            if model is None or (t - last_fit_at) >= int(self.refit_every):
                model = clone(template)
                if hasattr(model, "horizon"):
                    model.horizon = 1
                model.fit(series[:t].reshape(-1, 1))
                last_fit_at = t
            # Between refits the model state stays at ``last_fit_at``; forecast
            # far enough ahead that the prediction aligns with time ``t``.
            steps_ahead = t - last_fit_at + 1
            prediction = float(np.asarray(model.predict(steps_ahead)).ravel()[-1])
            residuals[t] = series[t] - prediction

        scores = np.zeros(n_samples)
        active = residuals[warmup:]
        scores[warmup:] = _robust_zscores(active)
        indices = np.where(scores > float(self.threshold))[0]

        self.result_ = AnomalyResult(
            indices=indices,
            scores=scores,
            threshold=float(self.threshold),
            extras={"warmup": warmup, "forecaster": type(template).__name__},
        )
        return self.result_


class SeasonalESDDetector(BaseEstimator):
    """Seasonal decomposition + generalised ESD anomaly detector.

    The series is decomposed into a seasonal profile (per-phase medians at
    the detected period) plus a median level; the generalised extreme
    studentised deviate (ESD) test is then applied to the remainder, flagging
    up to ``max_anomalies_fraction`` of the points at significance ``alpha``.
    """

    def __init__(
        self,
        seasonal_period: int | None = None,
        max_anomalies_fraction: float = 0.05,
        alpha: float = 0.05,
    ):
        self.seasonal_period = seasonal_period
        self.max_anomalies_fraction = max_anomalies_fraction
        self.alpha = alpha

    def _deseasonalise(self, series: np.ndarray) -> tuple[np.ndarray, int]:
        period = self.seasonal_period
        if period is None:
            period = dominant_period(series, max_period=max(len(series) // 3, 2)) or 1
        period = max(int(period), 1)
        if period < 2 or period * 2 > len(series):
            return series - np.median(series), 1
        profile = np.zeros(period)
        for phase in range(period):
            profile[phase] = float(np.median(series[phase::period]))
        phases = np.arange(len(series)) % period
        return series - profile[phases] - float(np.median(series - profile[phases])), period

    def fit_detect(self, series) -> AnomalyResult:
        """Run the detection and return the flagged indices."""
        check_fraction(self.max_anomalies_fraction, "max_anomalies_fraction")
        check_fraction(self.alpha, "alpha")
        series = as_1d_array(series, name="series")
        n_samples = len(series)
        if n_samples < 10:
            raise InvalidParameterError("Need at least 10 observations for ESD detection.")

        remainder, period = self._deseasonalise(series)
        max_anomalies = max(1, int(self.max_anomalies_fraction * n_samples))

        # Generalised ESD: repeatedly remove the most extreme point and test
        # its studentised deviate against the critical value.
        working = remainder.copy()
        available = np.arange(n_samples)
        flagged: list[int] = []
        for iteration in range(1, max_anomalies + 1):
            spread = working.std(ddof=1) if len(working) > 1 else 0.0
            if spread <= 1e-12:
                break
            deviations = np.abs(working - working.mean())
            worst_local = int(np.argmax(deviations))
            test_statistic = deviations[worst_local] / spread

            remaining = len(working)
            p = 1.0 - self.alpha / (2.0 * remaining)
            t_critical = scipy_stats.t.ppf(p, remaining - 2)
            critical = ((remaining - 1) * t_critical) / np.sqrt(
                (remaining - 2 + t_critical**2) * remaining
            )
            if test_statistic <= critical:
                break
            flagged.append(int(available[worst_local]))
            working = np.delete(working, worst_local)
            available = np.delete(available, worst_local)

        scores = np.zeros(n_samples)
        spread = remainder.std(ddof=1) if n_samples > 1 else 1.0
        if spread > 1e-12:
            scores = np.abs(remainder - remainder.mean()) / spread

        self.result_ = AnomalyResult(
            indices=np.array(sorted(flagged), dtype=int),
            scores=scores,
            threshold=float(scores[flagged].min()) if flagged else float("inf"),
            extras={"seasonal_period": period},
        )
        return self.result_
