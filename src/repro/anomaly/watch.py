"""Online residual drift watching for streaming re-ranking.

The batch detectors in :mod:`repro.anomaly.detectors` score a finished
series; a streaming engine needs the opposite shape — a tiny stateful
observer that is fed one forecast residual per arrival and decides *now*
whether the deployed ranking has gone stale.  :class:`ResidualDriftWatcher`
applies the same robust statistic the batch detectors use (median/MAD
z-score, consistent with a standard normal via the 0.6745 factor) to the
stream of per-arrival residual magnitudes: a run of ``patience``
consecutive robust outliers raises a :class:`DriftReport`, which
:class:`repro.stream.StreamingEngine` answers with a warm-started re-rank.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = ["DriftReport", "ResidualDriftWatcher"]


@dataclass
class DriftReport:
    """Evidence that the forecast residuals left their historical regime."""

    #: index of the arrival (0-based, counted across the watcher's life)
    #: whose residual completed the patience run.
    arrival_index: int
    #: robust z-score of the triggering residual magnitude.
    zscore: float
    #: the residual magnitudes of the whole patience run, oldest first.
    run_magnitudes: tuple[float, ...]
    #: how many reference residuals the decision was based on.
    history_size: int


class ResidualDriftWatcher:
    """Flag drift after ``patience`` consecutive outlier residuals.

    Parameters
    ----------
    threshold:
        Robust z-score above which one residual magnitude counts as an
        outlier.  The score is ``0.6745 * (m - median) / MAD`` over the
        rolling history of magnitudes (falling back to mean/std when the
        MAD collapses to zero), matching ``repro.anomaly.detectors``.
    patience:
        Number of *consecutive* outliers required before reporting.  A
        single spike is an anomaly; a sustained run is drift.
    min_history:
        Observations accumulated before any decision is attempted — the
        warm-up during which the watcher only learns the residual regime.
    window:
        Length of the rolling reference history.  Bounded so the regime
        estimate tracks slow, accepted change instead of the full past.
    """

    def __init__(
        self,
        threshold: float = 3.5,
        patience: int = 3,
        min_history: int = 12,
        window: int = 256,
    ):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if min_history < 2:
            raise ValueError("min_history must be >= 2")
        self.threshold = float(threshold)
        self.patience = int(patience)
        self.min_history = int(min_history)
        self._history: deque[float] = deque(maxlen=int(window))
        self._streak: list[float] = []
        self._arrivals = 0

    @property
    def streak(self) -> int:
        """Current count of consecutive outlier residuals."""
        return len(self._streak)

    def _zscore(self, magnitude: float) -> float:
        history = np.asarray(self._history, dtype=float)
        median = float(np.median(history))
        mad = float(np.median(np.abs(history - median)))
        if mad > 0:
            return 0.6745 * (magnitude - median) / mad
        std = float(history.std())
        if std > 0:
            return (magnitude - float(history.mean())) / std
        return 0.0 if magnitude == median else np.inf

    def observe(self, residual) -> DriftReport | None:
        """Feed one arrival's forecast residual; report drift or ``None``.

        ``residual`` is the (actual - predicted) row for the arrival —
        scalar or one value per series; the watcher tracks its mean
        absolute magnitude so multivariate drift in any subset of series
        still moves the statistic.
        """
        magnitude = float(np.mean(np.abs(np.asarray(residual, dtype=float))))
        index = self._arrivals
        self._arrivals += 1

        report = None
        if len(self._history) >= self.min_history:
            zscore = self._zscore(magnitude)
            if zscore > self.threshold:
                self._streak.append(magnitude)
                if len(self._streak) >= self.patience:
                    report = DriftReport(
                        arrival_index=index,
                        zscore=float(zscore),
                        run_magnitudes=tuple(self._streak),
                        history_size=len(self._history),
                    )
            else:
                self._streak.clear()
        # Outlier magnitudes still enter the reference history: if the new
        # regime is accepted (no re-rank, or post-reset), the watcher
        # adapts to it instead of firing forever.
        self._history.append(magnitude)
        return report

    def reset(self) -> None:
        """Clear the outlier streak (called after a re-rank handled drift)."""
        self._streak.clear()
