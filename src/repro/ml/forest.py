"""Random forest regressor: bagged CART trees with feature sub-sampling."""

from __future__ import annotations

import numpy as np

from .._validation import check_consistent_length, check_positive_int
from ..core.base import BaseRegressor, check_is_fitted
from .tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor(BaseRegressor):
    """Bootstrap-aggregated regression trees.

    Defaults are sized for the window-regression workloads in the pipeline
    inventory (hundreds to a few thousand windows with tens of features) so a
    full T-Daub evaluation finishes in seconds rather than minutes.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = 10,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = 0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestRegressor":
        check_positive_int(self.n_estimators, "n_estimators")
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        check_consistent_length(X, y)

        rng = np.random.default_rng(self.random_state)
        n_samples = len(y)
        self.estimators_: list[DecisionTreeRegressor] = []
        oob_sums = np.zeros(n_samples)
        oob_counts = np.zeros(n_samples)

        for index in range(int(self.n_estimators)):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                sample_indices = rng.integers(0, n_samples, size=n_samples)
            else:
                sample_indices = np.arange(n_samples)
            tree.fit(X[sample_indices], y[sample_indices])
            self.estimators_.append(tree)

            if self.bootstrap:
                out_of_bag = np.setdiff1d(
                    np.arange(n_samples), np.unique(sample_indices), assume_unique=True
                )
                if len(out_of_bag):
                    oob_sums[out_of_bag] += tree.predict(X[out_of_bag])
                    oob_counts[out_of_bag] += 1

        covered = oob_counts > 0
        if self.bootstrap and covered.any():
            oob_predictions = oob_sums[covered] / oob_counts[covered]
            residuals = y[covered] - oob_predictions
            self.oob_mae_ = float(np.mean(np.abs(residuals)))
        else:
            self.oob_mae_ = float("nan")
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ("estimators_",))
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        predictions = np.zeros(len(X))
        for tree in self.estimators_:
            predictions += tree.predict(X)
        return predictions / len(self.estimators_)
