"""K-nearest-neighbour regression.

Used by the Motif-style baseline (nearest historical window lookup) and
available as a plain ML regressor for custom pipelines.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_consistent_length, check_positive_int
from ..core.base import BaseRegressor, check_is_fitted
from ..exceptions import InvalidParameterError

__all__ = ["KNeighborsRegressor"]

_WEIGHTS = ("uniform", "distance")


class KNeighborsRegressor(BaseRegressor):
    """Average (optionally distance-weighted) of the k nearest training targets."""

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform"):
        self.n_neighbors = n_neighbors
        self.weights = weights

    def fit(self, X, y) -> "KNeighborsRegressor":
        check_positive_int(self.n_neighbors, "n_neighbors")
        if self.weights not in _WEIGHTS:
            raise InvalidParameterError(
                f"Unknown weights {self.weights!r}; expected one of {_WEIGHTS}."
            )
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        self._multi_output = y.ndim > 1
        check_consistent_length(X, y)
        self.X_train_ = X
        self.y_train_ = y
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ("X_train_",))
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        k = min(int(self.n_neighbors), len(self.X_train_))

        squared_query = np.sum(X**2, axis=1)[:, None]
        squared_train = np.sum(self.X_train_**2, axis=1)[None, :]
        distances = np.sqrt(
            np.clip(squared_query + squared_train - 2.0 * X @ self.X_train_.T, 0.0, None)
        )
        neighbor_indices = np.argpartition(distances, kth=k - 1, axis=1)[:, :k]

        predictions = []
        for row, neighbors in enumerate(neighbor_indices):
            targets = self.y_train_[neighbors]
            if self.weights == "distance":
                neighbor_distances = distances[row, neighbors]
                weights = 1.0 / (neighbor_distances + 1e-10)
                weights /= weights.sum()
                prediction = (
                    weights @ targets if self._multi_output else float(weights @ targets)
                )
            else:
                prediction = targets.mean(axis=0) if self._multi_output else float(
                    targets.mean()
                )
            predictions.append(prediction)
        return np.asarray(predictions)
