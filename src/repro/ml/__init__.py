"""From-scratch machine-learning regressors used inside forecasting pipelines.

The paper's ML pipelines wrap Random Forest, Support Vector Regression,
XGBoost-style gradient boosting, Linear Regression and SGD Regression behind
look-back window transforms.  Because neither scikit-learn nor xgboost is
available in the reproduction environment, equivalent models are implemented
here on top of numpy (see DESIGN.md, substitution table).
"""

from .boosting import GradientBoostingRegressor
from .forest import RandomForestRegressor
from .knn import KNeighborsRegressor
from .linear import LinearRegression, RidgeRegression, StreamingRidge
from .mlp import MLPRegressor
from .model_selection import GridSearch, TimeSeriesSplit, temporal_train_test_split
from .sgd import SGDRegressor
from .svr import SVR
from .tree import DecisionTreeRegressor

__all__ = [
    "LinearRegression",
    "RidgeRegression",
    "StreamingRidge",
    "SGDRegressor",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "GradientBoostingRegressor",
    "SVR",
    "KNeighborsRegressor",
    "MLPRegressor",
    "TimeSeriesSplit",
    "temporal_train_test_split",
    "GridSearch",
]
