"""Kernel support vector regression (epsilon-insensitive loss).

The WindowSVR pipeline of the paper wraps an SVR behind the look-back window
transform.  This implementation solves the primal problem with the
representer theorem: the prediction function is a kernel expansion over the
training points and the coefficients are found with L-BFGS on a smoothed
epsilon-insensitive loss.  This avoids an external QP solver while keeping
the familiar SVR behaviour (flat epsilon tube, C-controlled regularisation,
RBF/linear/polynomial kernels, sparse-ish support vectors).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from .._validation import check_consistent_length
from ..core.base import BaseRegressor, check_is_fitted
from ..exceptions import InvalidParameterError

__all__ = ["SVR"]

_KERNELS = ("rbf", "linear", "poly")


class SVR(BaseRegressor):
    """Epsilon-insensitive support vector regression.

    Parameters
    ----------
    kernel:
        ``"rbf"`` (default), ``"linear"`` or ``"poly"``.
    C:
        Inverse regularisation strength; larger values fit the data harder.
    epsilon:
        Half-width of the insensitive tube.
    gamma:
        RBF/poly kernel coefficient; ``"scale"`` uses ``1 / (n_features * var(X))``.
    degree:
        Degree of the polynomial kernel.
    max_train_size:
        When the training set is larger, only the most recent
        ``max_train_size`` rows are used (keeps the kernel matrix small, the
        same trick production AutoML systems use for SVR on long series).
    """

    def __init__(
        self,
        kernel: str = "rbf",
        C: float = 1.0,
        epsilon: float = 0.1,
        gamma: str | float = "scale",
        degree: int = 3,
        max_iter: int = 200,
        max_train_size: int = 1500,
        random_state: int | None = 0,
    ):
        self.kernel = kernel
        self.C = C
        self.epsilon = epsilon
        self.gamma = gamma
        self.degree = degree
        self.max_iter = max_iter
        self.max_train_size = max_train_size
        self.random_state = random_state

    # -- kernels ---------------------------------------------------------
    def _gamma_value(self, X: np.ndarray) -> float:
        if isinstance(self.gamma, str):
            if self.gamma != "scale":
                raise InvalidParameterError("gamma must be a float or 'scale'.")
            variance = float(X.var())
            if variance <= 0:
                variance = 1.0
            return 1.0 / (X.shape[1] * variance)
        value = float(self.gamma)
        if value <= 0:
            raise InvalidParameterError("gamma must be positive.")
        return value

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return A @ B.T
        if self.kernel == "poly":
            return (self._gamma_ * (A @ B.T) + 1.0) ** int(self.degree)
        if self.kernel == "rbf":
            squared_a = np.sum(A**2, axis=1)[:, None]
            squared_b = np.sum(B**2, axis=1)[None, :]
            squared_distance = np.clip(squared_a + squared_b - 2.0 * A @ B.T, 0.0, None)
            return np.exp(-self._gamma_ * squared_distance)
        raise InvalidParameterError(
            f"Unknown kernel {self.kernel!r}; expected one of {_KERNELS}."
        )

    # -- fitting ----------------------------------------------------------
    def fit(self, X, y) -> "SVR":
        if self.C <= 0:
            raise InvalidParameterError("C must be positive.")
        if self.epsilon < 0:
            raise InvalidParameterError("epsilon must be non-negative.")

        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        check_consistent_length(X, y)

        # Keep only the most recent rows when the problem is large.
        if len(y) > int(self.max_train_size):
            X = X[-int(self.max_train_size) :]
            y = y[-int(self.max_train_size) :]

        # Standardise features and target for numerical stability.
        self._x_mean = X.mean(axis=0)
        x_scale = X.std(axis=0)
        x_scale[x_scale == 0] = 1.0
        self._x_scale = x_scale
        self._y_mean = float(y.mean())
        y_scale = float(y.std())
        self._y_scale = y_scale if y_scale > 0 else 1.0

        Xs = (X - self._x_mean) / self._x_scale
        ys = (y - self._y_mean) / self._y_scale

        self._gamma_ = self._gamma_value(Xs)
        K = self._kernel_matrix(Xs, Xs)
        n_samples = len(ys)
        regularisation = 1.0 / (2.0 * self.C * n_samples)
        epsilon = self.epsilon / self._y_scale
        smoothing = 1e-3  # huberisation width of the epsilon-insensitive loss

        def objective(params: np.ndarray) -> tuple[float, np.ndarray]:
            beta = params[:-1]
            bias = params[-1]
            predictions = K @ beta + bias
            residuals = ys - predictions
            excess = np.abs(residuals) - epsilon
            outside = excess > 0
            # Smoothed epsilon-insensitive loss and its derivative w.r.t. prediction.
            quadratic = outside & (excess <= smoothing)
            linear = excess > smoothing
            loss_terms = np.zeros(n_samples)
            loss_terms[quadratic] = 0.5 * excess[quadratic] ** 2 / smoothing
            loss_terms[linear] = excess[linear] - 0.5 * smoothing
            dloss_dpred = np.zeros(n_samples)
            sign = -np.sign(residuals)
            dloss_dpred[quadratic] = sign[quadratic] * excess[quadratic] / smoothing
            dloss_dpred[linear] = sign[linear]

            value = float(np.mean(loss_terms)) + regularisation * float(beta @ K @ beta)
            grad_beta = K @ dloss_dpred / n_samples + 2.0 * regularisation * (K @ beta)
            grad_bias = float(np.mean(dloss_dpred))
            return value, np.append(grad_beta, grad_bias)

        initial = np.zeros(n_samples + 1)
        result = optimize.minimize(
            objective,
            initial,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": int(self.max_iter)},
        )
        params = result.x
        self.dual_coef_ = params[:-1]
        self.intercept_ = float(params[-1])
        self._X_train = Xs
        support_mask = np.abs(self.dual_coef_) > 1e-8
        self.support_ = np.where(support_mask)[0]
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ("dual_coef_",))
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        Xs = (X - self._x_mean) / self._x_scale
        K = self._kernel_matrix(Xs, self._X_train)
        standardized = K @ self.dual_coef_ + self.intercept_
        return standardized * self._y_scale + self._y_mean
