"""Multi-layer perceptron regressor built on the numpy neural-network core.

Thin estimator wrapper so the deep-learning pipelines expose the same
``fit``/``predict`` API as every other ML regressor.  The actual layers and
back-propagation live in :mod:`repro.dl.network`.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_consistent_length
from ..core.base import BaseRegressor, check_is_fitted
from ..dl.network import FeedForwardNetwork

__all__ = ["MLPRegressor"]


class MLPRegressor(BaseRegressor):
    """Feed-forward neural network for regression (squared loss, Adam)."""

    def __init__(
        self,
        hidden_layer_sizes: tuple[int, ...] = (64, 32),
        activation: str = "relu",
        learning_rate: float = 1e-3,
        max_iter: int = 200,
        batch_size: int = 32,
        alpha: float = 1e-4,
        tol: float = 1e-6,
        random_state: int | None = 0,
    ):
        self.hidden_layer_sizes = hidden_layer_sizes
        self.activation = activation
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.alpha = alpha
        self.tol = tol
        self.random_state = random_state

    def fit(self, X, y) -> "MLPRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        self._single_output = y.ndim == 1
        if self._single_output:
            y = y.reshape(-1, 1)
        check_consistent_length(X, y)

        # Standardise inputs/outputs internally for stable optimisation.
        self._x_mean = X.mean(axis=0)
        x_scale = X.std(axis=0)
        x_scale[x_scale == 0] = 1.0
        self._x_scale = x_scale
        self._y_mean = y.mean(axis=0)
        y_scale = y.std(axis=0)
        y_scale[y_scale == 0] = 1.0
        self._y_scale = y_scale

        Xs = (X - self._x_mean) / self._x_scale
        ys = (y - self._y_mean) / self._y_scale

        self.network_ = FeedForwardNetwork(
            layer_sizes=(X.shape[1], *tuple(self.hidden_layer_sizes), y.shape[1]),
            activation=self.activation,
            learning_rate=self.learning_rate,
            weight_decay=self.alpha,
            random_state=self.random_state,
        )
        self.loss_curve_ = self.network_.train(
            Xs,
            ys,
            epochs=int(self.max_iter),
            batch_size=int(self.batch_size),
            tol=float(self.tol),
        )
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ("network_",))
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        Xs = (X - self._x_mean) / self._x_scale
        predictions = self.network_.forward(Xs) * self._y_scale + self._y_mean
        if self._single_output:
            return predictions.ravel()
        return predictions
