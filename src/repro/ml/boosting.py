"""Gradient boosted regression trees (XGBoost-style model family).

The paper lists XGBoost among the ML models; this implementation provides
the same family — stage-wise additive trees fitted to gradients of a squared
or huber loss with shrinkage, subsampling and optional early stopping — on
top of the CART tree in :mod:`repro.ml.tree`.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_consistent_length, check_positive_int
from ..core.base import BaseRegressor, check_is_fitted
from ..exceptions import InvalidParameterError
from .tree import DecisionTreeRegressor

__all__ = ["GradientBoostingRegressor"]

_LOSSES = ("squared_error", "huber")


class GradientBoostingRegressor(BaseRegressor):
    """Stage-wise additive boosting of shallow regression trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        loss: str = "squared_error",
        huber_delta: float = 1.0,
        n_iter_no_change: int | None = None,
        validation_fraction: float = 0.1,
        random_state: int | None = 0,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.loss = loss
        self.huber_delta = huber_delta
        self.n_iter_no_change = n_iter_no_change
        self.validation_fraction = validation_fraction
        self.random_state = random_state

    def _negative_gradient(self, y: np.ndarray, predictions: np.ndarray) -> np.ndarray:
        residuals = y - predictions
        if self.loss == "squared_error":
            return residuals
        # Huber: residual inside delta, delta * sign outside.
        delta = self.huber_delta
        return np.where(np.abs(residuals) <= delta, residuals, delta * np.sign(residuals))

    def fit(self, X, y) -> "GradientBoostingRegressor":
        if self.loss not in _LOSSES:
            raise InvalidParameterError(
                f"Unknown loss {self.loss!r}; expected one of {_LOSSES}."
            )
        if not 0.0 < self.subsample <= 1.0:
            raise InvalidParameterError("subsample must be in (0, 1].")
        check_positive_int(self.n_estimators, "n_estimators")

        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        check_consistent_length(X, y)

        rng = np.random.default_rng(self.random_state)
        n_samples = len(y)

        # Optional validation split for early stopping (most recent rows,
        # consistent with temporal ordering of windowed features).
        if self.n_iter_no_change is not None and n_samples >= 20:
            n_validation = max(1, int(round(self.validation_fraction * n_samples)))
            X_train, y_train = X[:-n_validation], y[:-n_validation]
            X_val, y_val = X[-n_validation:], y[-n_validation:]
        else:
            X_train, y_train = X, y
            X_val = y_val = None

        self.init_prediction_ = float(np.mean(y_train))
        predictions = np.full(len(y_train), self.init_prediction_)
        validation_predictions = (
            np.full(len(y_val), self.init_prediction_) if y_val is not None else None
        )

        self.estimators_: list[DecisionTreeRegressor] = []
        self.train_scores_: list[float] = []
        best_validation_loss = np.inf
        rounds_without_improvement = 0

        for iteration in range(int(self.n_estimators)):
            gradient = self._negative_gradient(y_train, predictions)

            if self.subsample < 1.0:
                sample_size = max(2, int(round(self.subsample * len(y_train))))
                sample_indices = rng.choice(len(y_train), size=sample_size, replace=False)
            else:
                sample_indices = np.arange(len(y_train))

            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X_train[sample_indices], gradient[sample_indices])
            self.estimators_.append(tree)

            predictions += self.learning_rate * tree.predict(X_train)
            self.train_scores_.append(float(np.mean((y_train - predictions) ** 2)))

            if validation_predictions is not None:
                validation_predictions += self.learning_rate * tree.predict(X_val)
                validation_loss = float(np.mean((y_val - validation_predictions) ** 2))
                if validation_loss < best_validation_loss - 1e-12:
                    best_validation_loss = validation_loss
                    rounds_without_improvement = 0
                else:
                    rounds_without_improvement += 1
                    if rounds_without_improvement >= int(self.n_iter_no_change):
                        break

        self.n_estimators_ = len(self.estimators_)
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ("estimators_",))
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        predictions = np.full(len(X), self.init_prediction_)
        for tree in self.estimators_:
            predictions += self.learning_rate * tree.predict(X)
        return predictions

    def staged_predict(self, X):
        """Yield predictions after each boosting stage (used in tests)."""
        check_is_fitted(self, ("estimators_",))
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        predictions = np.full(len(X), self.init_prediction_)
        for tree in self.estimators_:
            predictions = predictions + self.learning_rate * tree.predict(X)
            yield predictions.copy()
