"""CART regression tree.

The building block for the Random Forest and gradient boosting regressors.
Split search is vectorised: for every candidate feature the samples are
sorted once and the variance reduction of every split position is evaluated
with prefix sums, so growing a tree is O(n_features * n log n) per node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_consistent_length
from ..core.base import BaseRegressor, check_is_fitted
from ..exceptions import InvalidParameterError

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    """A single node of the regression tree."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Return ``(feature, threshold, sse_gain)`` of the best split or None."""
    n_samples = len(y)
    total_sum = y.sum()
    total_sq_sum = float(np.dot(y, y))
    parent_sse = total_sq_sum - total_sum**2 / n_samples

    best_gain = 1e-12
    best: tuple[int, float, float] | None = None

    for feature in feature_indices:
        order = np.argsort(X[:, feature], kind="stable")
        x_sorted = X[order, feature]
        y_sorted = y[order]

        # Candidate split after position i (left = first i+1 samples).
        left_counts = np.arange(1, n_samples)
        left_sums = np.cumsum(y_sorted)[:-1]
        left_sq_sums = np.cumsum(y_sorted**2)[:-1]
        right_counts = n_samples - left_counts
        right_sums = total_sum - left_sums
        right_sq_sums = total_sq_sum - left_sq_sums

        left_sse = left_sq_sums - left_sums**2 / left_counts
        right_sse = right_sq_sums - right_sums**2 / right_counts
        gains = parent_sse - (left_sse + right_sse)

        # A split is only valid between distinct feature values and when both
        # children satisfy the minimum leaf size.
        valid = (np.diff(x_sorted) > 0) & (left_counts >= min_samples_leaf) & (
            right_counts >= min_samples_leaf
        )
        if not valid.any():
            continue
        gains = np.where(valid, gains, -np.inf)
        best_position = int(np.argmax(gains))
        gain = float(gains[best_position])
        if gain > best_gain:
            threshold = float(
                (x_sorted[best_position] + x_sorted[best_position + 1]) / 2.0
            )
            best_gain = gain
            best = (int(feature), threshold, gain)
    return best


class DecisionTreeRegressor(BaseRegressor):
    """Regression tree minimising squared error.

    Parameters follow the scikit-learn conventions; ``max_features`` accepts
    an int, a float fraction, ``"sqrt"``, ``"log2"`` or ``None`` (all
    features) and is re-drawn at every node, which is what random forests
    need for decorrelated trees.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_state: int | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def _resolve_max_features(self, n_features: int) -> int:
        max_features = self.max_features
        if max_features is None:
            return n_features
        if isinstance(max_features, str):
            if max_features == "sqrt":
                return max(1, int(np.sqrt(n_features)))
            if max_features == "log2":
                return max(1, int(np.log2(n_features)))
            raise InvalidParameterError(
                f"Unknown max_features value {max_features!r}; expected 'sqrt' or 'log2'."
            )
        if isinstance(max_features, float) and not isinstance(max_features, bool):
            if not 0.0 < max_features <= 1.0:
                raise InvalidParameterError("Float max_features must be in (0, 1].")
            return max(1, int(round(max_features * n_features)))
        value = int(max_features)
        if value < 1:
            raise InvalidParameterError("max_features must be >= 1.")
        return min(value, n_features)

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        check_consistent_length(X, y)
        if len(y) == 0:
            raise InvalidParameterError("Cannot fit a tree on empty data.")

        self._rng = np.random.default_rng(self.random_state)
        self.n_features_in_ = X.shape[1]
        self._max_features_resolved = self._resolve_max_features(X.shape[1])
        max_depth = np.inf if self.max_depth is None else int(self.max_depth)

        self.root_ = self._grow(X, y, depth=0, max_depth=max_depth)
        self.n_nodes_ = self._count_nodes(self.root_)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int, max_depth: float) -> _Node:
        prediction = float(np.mean(y))
        node = _Node(prediction=prediction)

        if (
            depth >= max_depth
            or len(y) < int(self.min_samples_split)
            or len(y) < 2 * int(self.min_samples_leaf)
            or np.ptp(y) == 0.0
        ):
            return node

        n_features = X.shape[1]
        if self._max_features_resolved < n_features:
            feature_indices = self._rng.choice(
                n_features, size=self._max_features_resolved, replace=False
            )
        else:
            feature_indices = np.arange(n_features)

        split = _best_split(X, y, feature_indices, int(self.min_samples_leaf))
        if split is None:
            return node

        feature, threshold, _ = split
        mask = X[:, feature] <= threshold
        # Guard against degenerate thresholds: when two adjacent feature
        # values are so close that their midpoint rounds onto one of them the
        # split would send every sample to one side — keep the node a leaf.
        if mask.all() or not mask.any():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, max_depth)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, max_depth)
        return node

    def _count_nodes(self, node: _Node | None) -> int:
        if node is None:
            return 0
        return 1 + self._count_nodes(node.left) + self._count_nodes(node.right)

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ("root_",))
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        predictions = np.empty(len(X))
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            predictions[i] = node.prediction
        return predictions

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (0 for a single leaf)."""
        check_is_fitted(self, ("root_",))

        def _depth(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self.root_)
