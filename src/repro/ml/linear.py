"""Linear least-squares regressors (ordinary and ridge).

Both support multi-output targets, which the window-based forecasters use to
predict a whole horizon in one shot (direct multi-step forecasting).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_consistent_length
from ..core.base import BaseRegressor, check_is_fitted
from ..exceptions import InvalidParameterError

__all__ = ["LinearRegression", "RidgeRegression"]


def _prepare(X, y) -> tuple[np.ndarray, np.ndarray, bool]:
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    single_output = y.ndim == 1
    if single_output:
        y = y.reshape(-1, 1)
    check_consistent_length(X, y)
    return X, y, single_output


class LinearRegression(BaseRegressor):
    """Ordinary least squares linear regression."""

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "LinearRegression":
        X, y, self._single_output = _prepare(X, y)
        if self.fit_intercept:
            design = np.column_stack([np.ones(len(X)), X])
        else:
            design = X
        solution, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = solution[0]
            self.coef_ = solution[1:]
        else:
            self.intercept_ = np.zeros(y.shape[1])
            self.coef_ = solution
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ("coef_",))
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        predictions = X @ self.coef_ + self.intercept_
        if self._single_output:
            return predictions.ravel()
        return predictions


class RidgeRegression(BaseRegressor):
    """Linear regression with L2 regularisation (closed form).

    The intercept is never penalised: features and targets are centred before
    solving so the ridge penalty applies only to the slope coefficients.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "RidgeRegression":
        if self.alpha < 0:
            raise InvalidParameterError(f"alpha must be >= 0, got {self.alpha}.")
        X, y, self._single_output = _prepare(X, y)

        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean(axis=0)
            X_centered = X - x_mean
            y_centered = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = np.zeros(y.shape[1])
            X_centered, y_centered = X, y

        n_features = X.shape[1]
        gram = X_centered.T @ X_centered + self.alpha * np.eye(n_features)
        moment = X_centered.T @ y_centered
        try:
            self.coef_ = np.linalg.solve(gram, moment)
        except np.linalg.LinAlgError:
            self.coef_, _, _, _ = np.linalg.lstsq(gram, moment, rcond=None)
        self.intercept_ = y_mean - x_mean @ self.coef_
        self.n_features_in_ = n_features
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ("coef_",))
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        predictions = X @ self.coef_ + self.intercept_
        if self._single_output:
            return predictions.ravel()
        return predictions
