"""Linear least-squares regressors (ordinary and ridge).

Both support multi-output targets, which the window-based forecasters use to
predict a whole horizon in one shot (direct multi-step forecasting).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_consistent_length
from ..core.base import BaseRegressor, check_is_fitted
from ..exceptions import InvalidParameterError

__all__ = ["LinearRegression", "RidgeRegression", "StreamingRidge"]


def _prepare(X, y) -> tuple[np.ndarray, np.ndarray, bool]:
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    single_output = y.ndim == 1
    if single_output:
        y = y.reshape(-1, 1)
    check_consistent_length(X, y)
    return X, y, single_output


class LinearRegression(BaseRegressor):
    """Ordinary least squares linear regression."""

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "LinearRegression":
        X, y, self._single_output = _prepare(X, y)
        if self.fit_intercept:
            design = np.column_stack([np.ones(len(X)), X])
        else:
            design = X
        solution, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = solution[0]
            self.coef_ = solution[1:]
        else:
            self.intercept_ = np.zeros(y.shape[1])
            self.coef_ = solution
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ("coef_",))
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        predictions = X @ self.coef_ + self.intercept_
        if self._single_output:
            return predictions.ravel()
        return predictions


class StreamingRidge(BaseRegressor):
    """Ridge regression fit from accumulated raw second moments.

    The closed-form ridge solution needs only ``X'X``, ``X'y`` and the
    column sums — all additive over row blocks — so the model can consume
    a lag matrix **block by block** (:meth:`partial_fit`) without the full
    tensor ever existing.  This is the estimator the out-of-core framing
    path pairs with :class:`repro.frame.framer.ChunkedWindowFramer`: peak
    memory is one block plus two ``(d, d)``/``(d, k)`` accumulators.

    Determinism: given the same block sequence the accumulators see the
    same floating-point operations in the same order, so two runs (or an
    in-memory and an out-of-core run using identical ``block_windows``)
    produce bit-identical coefficients.  Note the raw-moment centering
    (``X'X - n·x̄x̄'``) is *mathematically* equal to
    :class:`RidgeRegression`'s centered Gram but associates differently,
    so coefficients agree only to numerical precision with the one-shot
    solver — run-to-run equality is exact, cross-solver equality is
    approximate.

    ``fit(X, y)`` is reset + one ``partial_fit`` (drop-in for the batch
    API); the solve happens lazily on first :meth:`predict`.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def _reset(self) -> None:
        self._xtx = None
        self._xty = None
        self._x_sum = None
        self._y_sum = None
        self._n = 0
        self._solved = False

    def partial_fit(self, X, y) -> "StreamingRidge":
        """Fold one block of rows into the moment accumulators."""
        if self.alpha < 0:
            raise InvalidParameterError(f"alpha must be >= 0, got {self.alpha}.")
        X, y, single_output = _prepare(X, y)
        if getattr(self, "_xtx", None) is None:
            if self._n_accumulated() == 0:
                self._reset()
            d, k = X.shape[1], y.shape[1]
            self._xtx = np.zeros((d, d))
            self._xty = np.zeros((d, k))
            self._x_sum = np.zeros(d)
            self._y_sum = np.zeros(k)
            self._single_output = single_output
        self._xtx += X.T @ X
        self._xty += X.T @ y
        self._x_sum += X.sum(axis=0)
        self._y_sum += y.sum(axis=0)
        self._n += len(X)
        self._solved = False
        return self

    def _n_accumulated(self) -> int:
        return int(getattr(self, "_n", 0))

    def fit(self, X, y) -> "StreamingRidge":
        self._reset()
        return self.partial_fit(X, y)

    def _solve(self) -> None:
        if self._n == 0 or self._xtx is None:
            raise RuntimeError("StreamingRidge has seen no data.")
        n = float(self._n)
        if self.fit_intercept:
            x_mean = self._x_sum / n
            y_mean = self._y_sum / n
            gram = self._xtx - n * np.outer(x_mean, x_mean)
            moment = self._xty - n * np.outer(x_mean, y_mean)
        else:
            x_mean = np.zeros(self._xtx.shape[0])
            y_mean = np.zeros(self._xty.shape[1])
            gram = self._xtx.copy()
            moment = self._xty.copy()
        gram += self.alpha * np.eye(gram.shape[0])
        try:
            self.coef_ = np.linalg.solve(gram, moment)
        except np.linalg.LinAlgError:
            self.coef_, _, _, _ = np.linalg.lstsq(gram, moment, rcond=None)
        self.intercept_ = y_mean - x_mean @ self.coef_
        self.n_features_in_ = gram.shape[0]
        self._solved = True

    def predict(self, X) -> np.ndarray:
        if not getattr(self, "_solved", False):
            self._solve()
        check_is_fitted(self, ("coef_",))
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        predictions = X @ self.coef_ + self.intercept_
        if self._single_output:
            return predictions.ravel()
        return predictions


class RidgeRegression(BaseRegressor):
    """Linear regression with L2 regularisation (closed form).

    The intercept is never penalised: features and targets are centred before
    solving so the ridge penalty applies only to the slope coefficients.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "RidgeRegression":
        if self.alpha < 0:
            raise InvalidParameterError(f"alpha must be >= 0, got {self.alpha}.")
        X, y, self._single_output = _prepare(X, y)

        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean(axis=0)
            X_centered = X - x_mean
            y_centered = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = np.zeros(y.shape[1])
            X_centered, y_centered = X, y

        n_features = X.shape[1]
        gram = X_centered.T @ X_centered + self.alpha * np.eye(n_features)
        moment = X_centered.T @ y_centered
        try:
            self.coef_ = np.linalg.solve(gram, moment)
        except np.linalg.LinAlgError:
            self.coef_, _, _, _ = np.linalg.lstsq(gram, moment, rcond=None)
        self.intercept_ = y_mean - x_mean @ self.coef_
        self.n_features_in_ = n_features
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ("coef_",))
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        predictions = X @ self.coef_ + self.intercept_
        if self._single_output:
            return predictions.ravel()
        return predictions
