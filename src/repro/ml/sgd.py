"""Stochastic gradient descent regressor.

One of the ML model families listed in section 3 of the paper ("Random
Forest, XGBoost, Linear Regression, SGD Regression").  Supports squared,
huber and epsilon-insensitive losses with L2 regularisation, mini-batch
updates and an inverse-scaling learning-rate schedule.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_consistent_length
from ..core.base import BaseRegressor, check_is_fitted
from ..exceptions import InvalidParameterError

__all__ = ["SGDRegressor"]

_LOSSES = ("squared_error", "huber", "epsilon_insensitive")


class SGDRegressor(BaseRegressor):
    """Linear model fitted by mini-batch stochastic gradient descent."""

    def __init__(
        self,
        loss: str = "squared_error",
        alpha: float = 1e-4,
        learning_rate: float = 0.01,
        max_iter: int = 200,
        batch_size: int = 32,
        epsilon: float = 0.1,
        tol: float = 1e-5,
        shuffle: bool = True,
        random_state: int | None = 0,
    ):
        self.loss = loss
        self.alpha = alpha
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.epsilon = epsilon
        self.tol = tol
        self.shuffle = shuffle
        self.random_state = random_state

    def _loss_gradient(self, errors: np.ndarray) -> np.ndarray:
        """Derivative of the per-sample loss with respect to the prediction."""
        if self.loss == "squared_error":
            return errors
        if self.loss == "huber":
            return np.clip(errors, -self.epsilon, self.epsilon)
        # epsilon-insensitive: zero inside the tube, +-1 outside.
        gradient = np.zeros_like(errors)
        gradient[errors > self.epsilon] = 1.0
        gradient[errors < -self.epsilon] = -1.0
        return gradient

    def fit(self, X, y) -> "SGDRegressor":
        if self.loss not in _LOSSES:
            raise InvalidParameterError(
                f"Unknown loss {self.loss!r}; expected one of {_LOSSES}."
            )
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        check_consistent_length(X, y)

        rng = np.random.default_rng(self.random_state)
        n_samples, n_features = X.shape

        # Standardise internally for stable step sizes; store for predict.
        self._x_mean = X.mean(axis=0)
        x_scale = X.std(axis=0)
        x_scale[x_scale == 0] = 1.0
        self._x_scale = x_scale
        self._y_mean = float(y.mean())
        y_scale = float(y.std())
        self._y_scale = y_scale if y_scale > 0 else 1.0

        Xs = (X - self._x_mean) / self._x_scale
        ys = (y - self._y_mean) / self._y_scale

        weights = np.zeros(n_features)
        intercept = 0.0
        batch_size = max(1, min(int(self.batch_size), n_samples))
        previous_loss = np.inf

        for epoch in range(int(self.max_iter)):
            indices = np.arange(n_samples)
            if self.shuffle:
                rng.shuffle(indices)
            step = self.learning_rate / (1.0 + 0.01 * epoch)
            for start in range(0, n_samples, batch_size):
                batch = indices[start : start + batch_size]
                predictions = Xs[batch] @ weights + intercept
                errors = predictions - ys[batch]
                grad_pred = self._loss_gradient(errors)
                grad_w = Xs[batch].T @ grad_pred / len(batch) + self.alpha * weights
                grad_b = float(np.mean(grad_pred))
                weights -= step * grad_w
                intercept -= step * grad_b

            epoch_predictions = Xs @ weights + intercept
            epoch_loss = float(np.mean((epoch_predictions - ys) ** 2))
            if abs(previous_loss - epoch_loss) < self.tol:
                break
            previous_loss = epoch_loss

        self.coef_ = weights
        self.intercept_ = intercept
        self.n_iter_ = epoch + 1
        self.n_features_in_ = n_features
        return self

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, ("coef_",))
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        Xs = (X - self._x_mean) / self._x_scale
        standardized = Xs @ self.coef_ + self.intercept_
        return standardized * self._y_scale + self._y_mean
