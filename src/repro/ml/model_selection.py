"""Model selection utilities respecting temporal ordering.

Time series cannot be split IID: the paper keeps the final 20% of every data
set as holdout and T-Daub allocates *most recent first* within the training
portion.  These helpers provide the temporal split, an expanding-window
cross-validator and a small grid search used by the statistical forecasters'
internal parameter optimisation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .._validation import check_fraction
from ..core.base import BaseEstimator, clone
from ..exceptions import InvalidParameterError

__all__ = ["temporal_train_test_split", "TimeSeriesSplit", "GridSearch", "GridSearchResult"]


def temporal_train_test_split(
    X, test_fraction: float = 0.2, min_train: int = 1, min_test: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Split a series into past (train) and future (test) segments.

    The paper uses an 80%-20% train/holdout split throughout the benchmark.
    """
    check_fraction(test_fraction, "test_fraction")
    X = np.asarray(X, dtype=float)
    n_samples = len(X)
    n_test = max(int(round(n_samples * test_fraction)), min_test)
    n_train = n_samples - n_test
    if n_train < min_train:
        raise InvalidParameterError(
            f"Cannot split {n_samples} samples into train >= {min_train} and "
            f"test >= {min_test} with test_fraction={test_fraction}."
        )
    return X[:n_train], X[n_train:]


class TimeSeriesSplit:
    """Expanding-window cross-validation splitter.

    Each split trains on an initial segment and tests on the following
    ``test_size`` observations, mirroring how forecasts are consumed.
    """

    def __init__(self, n_splits: int = 3, test_size: int | None = None):
        if n_splits < 1:
            raise InvalidParameterError("n_splits must be >= 1.")
        self.n_splits = n_splits
        self.test_size = test_size

    def split(self, X) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        X = np.asarray(X)
        n_samples = len(X)
        n_splits = int(self.n_splits)
        test_size = self.test_size or max(1, n_samples // (n_splits + 1))
        if n_samples <= test_size * n_splits:
            raise InvalidParameterError(
                f"Cannot create {n_splits} splits of test_size={test_size} "
                f"from {n_samples} samples."
            )
        indices = np.arange(n_samples)
        for split_index in range(n_splits):
            test_end = n_samples - (n_splits - 1 - split_index) * test_size
            test_start = test_end - test_size
            yield indices[:test_start], indices[test_start:test_end]


@dataclass
class GridSearchResult:
    """Best configuration found by :class:`GridSearch`."""

    best_params: Dict[str, Any]
    best_score: float
    all_scores: Dict[tuple, float]


class GridSearch:
    """Exhaustive search over a parameter grid with a user-supplied scorer.

    ``scorer(estimator, train, test) -> float`` where larger is better.  The
    search clones the estimator for every configuration, so the input
    estimator is never mutated.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid: Mapping[str, Sequence[Any]],
        scorer: Callable[[BaseEstimator, np.ndarray, np.ndarray], float],
        cv: TimeSeriesSplit | None = None,
    ):
        self.estimator = estimator
        self.param_grid = dict(param_grid)
        self.scorer = scorer
        self.cv = cv

    def _configurations(self) -> Iterable[Dict[str, Any]]:
        names = sorted(self.param_grid)
        for combination in itertools.product(*(self.param_grid[name] for name in names)):
            yield dict(zip(names, combination))

    def fit(self, X) -> GridSearchResult:
        X = np.asarray(X, dtype=float)
        cv = self.cv or TimeSeriesSplit(n_splits=1)
        all_scores: Dict[tuple, float] = {}
        best_score = -np.inf
        best_params: Dict[str, Any] = {}

        for params in self._configurations():
            scores = []
            for train_idx, test_idx in cv.split(X):
                candidate = clone(self.estimator).set_params(**params)
                try:
                    score = self.scorer(candidate, X[train_idx], X[test_idx])
                except Exception:
                    score = -np.inf
                scores.append(score)
            mean_score = float(np.mean(scores)) if scores else -np.inf
            all_scores[tuple(sorted(params.items()))] = mean_score
            if mean_score > best_score:
                best_score = mean_score
                best_params = params

        if not best_params:
            raise InvalidParameterError("Empty parameter grid.")
        return GridSearchResult(
            best_params=best_params, best_score=best_score, all_scores=all_scores
        )
