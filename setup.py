"""Setup script (legacy path) so editable installs work without the wheel package."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="0.1.0",
    description="Reproduction of AutoAI-TS: AutoAI for Time Series Forecasting (SIGMOD 2021)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
