"""Scenario: extending AutoAI-TS with a custom pipeline.

Section 4 of the paper: "The system is designed to incorporate any other
type of model family without requiring any changes to the system as long as
the new models implement the common APIs."  This example registers a custom
Theta-with-log-transform pipeline and a gradient-boosting window pipeline,
then lets T-Daub rank them against a few of the built-in pipelines.

Run with:  python examples/custom_pipeline_extension.py
"""

from __future__ import annotations

import numpy as np

from repro import AutoAITS, ForecastingPipeline
from repro.core.registry import PipelineRegistry
from repro.forecasters.theta import ThetaForecaster
from repro.hybrid.window_regressor import WindowRegressor
from repro.metrics import smape
from repro.ml.boosting import GradientBoostingRegressor
from repro.transforms import LogTransform


def theta_log_factory(lookback: int, horizon: int, allow_log: bool) -> ForecastingPipeline:
    """Theta method behind an optional log transform."""
    steps = [("log", LogTransform())] if allow_log else []
    return ForecastingPipeline(
        steps=steps,
        forecaster=ThetaForecaster(horizon=horizon),
        name_override="Theta, log",
    )


def window_boosting_factory(lookback: int, horizon: int, allow_log: bool) -> ForecastingPipeline:
    """Gradient-boosted trees over look-back windows."""
    return ForecastingPipeline(
        forecaster=WindowRegressor(
            regressor=GradientBoostingRegressor(n_estimators=60, max_depth=3, random_state=0),
            lookback=lookback,
            horizon=horizon,
        ),
        name_override="WindowGradientBoosting",
    )


def main() -> None:
    t = np.arange(420.0)
    rng = np.random.default_rng(11)
    series = 300.0 + 0.4 * t + 40.0 * np.sin(2.0 * np.pi * t / 30.0) + rng.normal(0, 6.0, 420)
    horizon = 12
    train, test = series[:-horizon], series[-horizon:]

    # The AutoAITS orchestrator builds its own registry internally; for custom
    # pipelines we drive the registry + T-Daub workflow explicitly.
    registry = PipelineRegistry()
    registry.register("Theta, log", theta_log_factory)
    registry.register("WindowGradientBoosting", window_boosting_factory)

    candidate_names = [
        "HW_Additive",
        "Arima",
        "MT2RForecaster",
        "Theta, log",
        "WindowGradientBoosting",
    ]

    from repro.core import TDaub

    pipelines = registry.create_all(lookback=30, horizon=horizon, names=candidate_names)
    selector = TDaub(pipelines=pipelines, horizon=horizon, run_to_completion=2)
    selector.fit(train.reshape(-1, 1))

    print("T-Daub ranking (custom + built-in pipelines):")
    for rank, (name, score, seconds) in enumerate(selector.result_.ranking_table(), start=1):
        print(f"  {rank:>2d}. {name:<28s} score={score:8.3f}  {seconds:6.2f}s")
    print()
    forecast = selector.predict(horizon)
    print(f"best pipeline: {selector.best_pipeline_name_}")
    print(f"holdout SMAPE: {smape(test, forecast):.2f}")

    # The same custom registry idea also works through the zero-conf front
    # door: restrict AutoAITS to a subset of built-in pipelines.
    model = AutoAITS(prediction_horizon=horizon, pipeline_names=["HW_Additive", "Arima"])
    model.fit(train)
    print()
    print(f"AutoAITS (restricted inventory) selected: {model.best_pipeline_name_}")
    print(f"AutoAITS holdout SMAPE: {smape(test, model.predict(horizon)):.2f}")


if __name__ == "__main__":
    main()
