"""Scenario: multivariate retail forecasting (Rossmann-style store sales).

The paper's multivariate experiments feed all series of a data set to the
system at once (columns = stores, rows = time) and ask for a joint forecast.
This example uses the Rossmann surrogate, runs AutoAI-TS on ten stores
simultaneously and inspects which pipeline the T-Daub selector chose and how
the pipeline ranking looked.

Run with:  python examples/retail_multivariate.py
"""

from __future__ import annotations

import numpy as np

from repro import AutoAITS
from repro.data import load_multivariate_dataset
from repro.metrics import smape


HORIZON = 12


def main() -> None:
    # Six stores and ~4 years of weekly history keep the example snappy; drop
    # the column slice / max_length to run the full surrogate.
    data = load_multivariate_dataset("rossmann", max_length=220)[:, :6]
    train, test = data[:-HORIZON], data[-HORIZON:]
    n_stores = data.shape[1]
    print(f"Rossmann surrogate: {len(data)} weeks x {n_stores} stores")
    print()

    model = AutoAITS(
        prediction_horizon=HORIZON,
        # Retail sales are non-negative; clip any negative forecasts.
        positive_forecasts=True,
        # The statistical + hybrid subset covers the multivariate winners of
        # the paper's Figure 15 and keeps this demo under a minute.
        pipeline_names=[
            "HW_Additive",
            "HW_Multiplicative",
            "Arima",
            "MT2RForecaster",
            "WindowSVR",
            "LocalizedFlattenAutoEnsembler",
        ],
        verbose=False,
    )
    model.fit(train)
    forecast = model.predict(HORIZON)

    print("T-Daub pipeline ranking (best first):")
    for rank, (name, score, seconds) in enumerate(model.tdaub_.result_.ranking_table(), start=1):
        marker = "  <- selected" if name == model.best_pipeline_name_ else ""
        print(f"  {rank:>2d}. {name:<40s} score={score:8.3f}  {seconds:6.2f}s{marker}")
    print()

    per_store = [smape(test[:, store], forecast[:, store]) for store in range(n_stores)]
    print(f"{'store':>6s} {'SMAPE':>8s}")
    for store, error in enumerate(per_store):
        print(f"{store:>6d} {error:>8.2f}")
    print()
    print(f"average SMAPE over {n_stores} stores: {np.mean(per_store):.2f}")
    print(f"selected pipeline: {model.best_pipeline_name_}")
    print(f"look-back window (shared across stores): {model.lookback_}")


if __name__ == "__main__":
    main()
