"""Scenario: hourly energy-demand forecasting (PJM-style workload).

The largest data sets of the paper's univariate suite are PJM hourly energy
consumption series.  This example uses the PJME-MW surrogate from the data
suite, compares AutoAI-TS against the individual statistical pipelines and a
couple of the SOTA baselines, and shows how the discovered look-back window
relates to the daily/weekly seasonality.

Run with:  python examples/energy_demand.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import AutoAITS
from repro.baselines import PmdarimaLike, ProphetLike
from repro.core.registry import PipelineRegistry
from repro.data import load_univariate_dataset
from repro.metrics import smape


HORIZON = 24          # forecast one day ahead (hourly data)
SERIES_LENGTH = 1200  # 50 days of hourly history (scaled-down PJME surrogate)


def evaluate(name: str, fit_predict, train: np.ndarray, test: np.ndarray) -> None:
    start = time.perf_counter()
    forecast = fit_predict(train)
    seconds = time.perf_counter() - start
    print(f"  {name:<22s} SMAPE = {smape(test, forecast):6.2f}   ({seconds:6.2f}s)")


def main() -> None:
    series = load_univariate_dataset("PJME-MW", max_length=SERIES_LENGTH)
    train, test = series[:-HORIZON], series[-HORIZON:]
    print(f"PJME-MW surrogate: {len(series)} hourly observations, forecasting {HORIZON}h ahead")
    print()

    # --- AutoAI-TS, zero configuration --------------------------------------
    model = AutoAITS(prediction_horizon=HORIZON)
    start = time.perf_counter()
    model.fit(train)
    autoai_seconds = time.perf_counter() - start
    forecast = model.predict(HORIZON)
    print("AutoAI-TS")
    print(f"  selected pipeline      : {model.best_pipeline_name_}")
    print(f"  discovered look-back   : {model.lookback_} hours")
    print(f"  holdout SMAPE          : {smape(test, forecast):.2f}   ({autoai_seconds:.2f}s)")
    print()

    # --- individual pipelines for comparison --------------------------------
    print("Individual AutoAI-TS pipelines (trained standalone):")
    registry = PipelineRegistry()
    for pipeline_name in ("HW_Additive", "bats", "WindowSVR", "MT2RForecaster"):
        def fit_pipeline(train_data, _name=pipeline_name):
            pipeline = registry.create(_name, lookback=model.lookback_, horizon=HORIZON)
            pipeline.fit(train_data)
            return pipeline.predict(HORIZON)

        evaluate(pipeline_name, fit_pipeline, train, test)
    print()

    # --- two SOTA baselines with zero-conf defaults --------------------------
    print("SOTA baselines (zero-conf defaults):")
    evaluate(
        "Prophet",
        lambda data: ProphetLike(horizon=HORIZON).fit(data).predict(HORIZON),
        train,
        test,
    )
    evaluate(
        "PMDArima",
        lambda data: PmdarimaLike(horizon=HORIZON, m=24).fit(data).predict(HORIZON),
        train,
        test,
    )


if __name__ == "__main__":
    main()
