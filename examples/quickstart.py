"""Quickstart: zero-conf forecasting with AutoAI-TS.

The zero-conf promise of the paper: "the user simply drops-in their data set
and the system transparently performs all the complex tasks of feature
engineering, training, parameter tuning, model ranking and returns one or
more of the best performing trained models ready for prediction."

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AutoAITS
from repro.metrics import smape


def make_monthly_sales_series(n_months: int = 240) -> np.ndarray:
    """A retail-style monthly series: trend + yearly seasonality + noise."""
    t = np.arange(n_months, dtype=float)
    rng = np.random.default_rng(2024)
    return (
        500.0
        + 2.5 * t                                   # steady growth
        + 80.0 * np.sin(2.0 * np.pi * t / 12.0)     # yearly seasonality
        + rng.normal(0.0, 15.0, n_months)           # observation noise
    )


def main() -> None:
    series = make_monthly_sales_series()
    horizon = 12

    # Hold out the final year so we can check the forecast afterwards.
    train, actual_future = series[:-horizon], series[-horizon:]

    # --- the entire AutoAI-TS API surface: construct, fit, predict ----------
    model = AutoAITS(prediction_horizon=horizon, verbose=True)
    model.fit(train)
    forecast = model.predict(horizon)          # shape (12, 1): rows = future steps

    # -------------------------------------------------------------------------
    print()
    print(model.summary())
    print()
    print(f"{'month':>5s} {'forecast':>12s} {'actual':>12s}")
    for step, (predicted, actual) in enumerate(zip(forecast.ravel(), actual_future), start=1):
        print(f"{step:>5d} {predicted:>12.1f} {actual:>12.1f}")
    print()
    print(f"holdout SMAPE of the selected pipeline: {smape(actual_future, forecast):.2f}")
    print(f"selected pipeline: {model.best_pipeline_name_}")
    print(f"discovered look-back window: {model.lookback_}")


if __name__ == "__main__":
    main()
