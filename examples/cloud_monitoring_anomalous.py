"""Scenario: cloud-monitoring series with missing values and spikes.

Cloud application monitoring (NAB-style CPU utilisation traces) is one of
the domains the paper's introduction motivates: noisy, spiky series with
occasional gaps, where no single model family is reliably best.  This
example corrupts a cloud-monitoring surrogate with missing values and
outliers and shows the quality-check + cleaning stage coping with it.

Run with:  python examples/cloud_monitoring_anomalous.py
"""

from __future__ import annotations

import numpy as np

from repro import AutoAITS
from repro.data import load_univariate_dataset
from repro.metrics import smape


HORIZON = 12


def corrupt(series: np.ndarray, seed: int = 5) -> np.ndarray:
    """Inject missing values and a few large spikes, as raw telemetry has."""
    rng = np.random.default_rng(seed)
    corrupted = series.astype(float).copy()
    missing_positions = rng.choice(len(series) - HORIZON, size=len(series) // 25, replace=False)
    corrupted[missing_positions] = np.nan
    spike_positions = rng.choice(len(series) - HORIZON, size=5, replace=False)
    corrupted[spike_positions] *= rng.uniform(3.0, 6.0, size=5)
    return corrupted


def main() -> None:
    clean = load_univariate_dataset("ec2-cpu-utilization-24ae8d", max_length=600)
    series = corrupt(clean)
    train, test = series[:-HORIZON], clean[-HORIZON:]

    model = AutoAITS(prediction_horizon=HORIZON, verbose=False)
    model.fit(train)

    report = model.quality_report_
    print("Quality check findings:")
    print(f"  samples              : {report.n_samples}")
    print(f"  missing values       : {report.has_missing} ({report.missing_fraction:.1%})")
    print(f"  negative values      : {report.has_negative}")
    for message in report.messages:
        print(f"  note                 : {message}")
    print()

    forecast = model.predict(HORIZON)
    print(f"selected pipeline : {model.best_pipeline_name_}")
    print(f"look-back window  : {model.lookback_}")
    print(f"SMAPE vs the clean (uncorrupted) future: {smape(test, forecast):.2f}")


if __name__ == "__main__":
    main()
