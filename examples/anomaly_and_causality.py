"""Scenario: the paper's future-work extensions — anomaly detection,
volatility modelling and causal analysis.

Section 6 of the paper lists anomaly detection, high-volatility models and
causal analysis of time series as the planned extensions of AutoAI-TS.  This
example exercises the three extension packages on the benchmark surrogates:

1. flag anomalies in a cloud-monitoring trace with the forecast-residual and
   seasonal-ESD detectors,
2. fit EWMA and GARCH(1, 1) volatility models to exchange-rate returns, and
3. build a Granger-causality graph over a multivariate retail data set to
   see which stores' sales lead which.

Run with:  python examples/anomaly_and_causality.py
"""

from __future__ import annotations

import numpy as np

from repro.anomaly import ForecastResidualDetector, SeasonalESDDetector
from repro.causal import build_causal_graph
from repro.data import load_multivariate_dataset, load_univariate_dataset
from repro.volatility import EWMAVolatility, GARCHModel, to_returns


def anomaly_section() -> None:
    series = load_univariate_dataset("ec2-cpu-utilization-77c1ca", max_length=800)
    # Inject a handful of incidents on top of the surrogate telemetry.
    rng = np.random.default_rng(9)
    incidents = rng.choice(np.arange(400, 780), size=4, replace=False)
    series = series.copy()
    series[incidents] += 8.0 * series.std()

    residual_result = ForecastResidualDetector(threshold=5.0).fit_detect(series)
    esd_result = SeasonalESDDetector(max_anomalies_fraction=0.02).fit_detect(series)

    print("Anomaly detection on ec2-cpu-utilization-77c1ca (4 injected incidents)")
    print(f"  injected incident positions : {sorted(incidents.tolist())}")
    print(f"  residual detector flagged   : {residual_result.indices.tolist()}")
    print(f"  seasonal-ESD flagged        : {esd_result.indices.tolist()}")
    print()


def volatility_section() -> None:
    prices = load_univariate_dataset("exchange-2-cpc-results", max_length=1200)
    returns = to_returns(np.clip(prices, 1e-3, None), kind="log")

    ewma = EWMAVolatility().fit(returns)
    garch = GARCHModel().fit(returns)

    print("Volatility models on ad-exchange price returns")
    print(f"  EWMA  next-step volatility  : {ewma.forecast_volatility(1)[0]:.4f}")
    print(f"  GARCH next-step volatility  : {garch.forecast_volatility(1)[0]:.4f}")
    print(f"  GARCH persistence (a+b)     : {garch.persistence:.3f}")
    print(f"  GARCH 10-step volatility    : {garch.forecast_volatility(10)[-1]:.4f}")
    print()


def causality_section() -> None:
    data = load_multivariate_dataset("rossmann", max_length=400)[:, :5]
    names = [f"store_{index}" for index in range(data.shape[1])]
    result = build_causal_graph(data, names=names, lags=3)

    print("Granger-causality graph over five Rossmann stores")
    if result.graph.number_of_edges() == 0:
        print("  no significant lead-lag relations at the corrected 5% level")
    for source, target in result.edges():
        edge = result.graph.edges[(source, target)]
        print(
            f"  {source} -> {target}   F={edge['f_statistic']:6.2f}  p={edge['p_value']:.4f}"
        )
    print()


def main() -> None:
    anomaly_section()
    volatility_section()
    causality_section()


if __name__ == "__main__":
    main()
